"""Robustness fuzzing: the safety contracts the paper depends on.

Two invariants matter most for a system that runs operator-supplied code
in the forwarding path (§3: eBPF code cannot compromise the kernel):

1. **Verified programs never fault.**  Whatever the verifier accepts
   must execute without memory faults in both engines, and both engines
   must agree on the result.
2. **Parsers never crash on wire garbage.**  Malformed SRHs, TLVs and
   headers raise clean ``ValueError``s (and the datapath drops), never
   arbitrary exceptions.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.net  # noqa: F401
from repro.ebpf import (
    HelperContext,
    JitProgram,
    Memory,
    Program,
    SkbContext,
    VerifierError,
    assemble,
)
from repro.ebpf.errors import AsmError, BpfError
from repro.ebpf.vm import Interpreter
from repro.net import IPv6Header, Packet, SRH, validate_srh_bytes
from repro.net.srh import parse_tlvs

PKT = b"\x60" + b"\x00" * 63


# --- random-program construction ---------------------------------------------

_REGS = [f"r{i}" for i in range(10)]

_line = st.one_of(
    st.tuples(
        st.sampled_from(["mov", "add", "sub", "mul", "div", "or", "and", "xor",
                         "lsh", "rsh", "arsh", "mod"]),
        st.sampled_from(_REGS),
        st.one_of(st.sampled_from(_REGS), st.integers(-1000, 1000)),
    ).map(lambda t: f"{t[0]} {t[1]}, {t[2]}"),
    st.tuples(
        st.sampled_from(["ldxdw", "ldxw", "ldxh", "ldxb"]),
        st.sampled_from(_REGS),
        st.integers(-64, 8),
    ).map(lambda t: f"{t[0]} {t[1]}, [r10{t[2]:+d}]"),
    st.tuples(
        st.sampled_from(["stxdw", "stxw", "stxh", "stxb"]),
        st.integers(-64, 8),
        st.sampled_from(_REGS),
    ).map(lambda t: f"{t[0]} [r10{t[1]:+d}], {t[2]}"),
    st.tuples(
        st.sampled_from(["jeq", "jne", "jgt", "jlt", "jsgt", "jslt"]),
        st.sampled_from(_REGS),
        st.integers(-100, 100),
    ).map(lambda t: f"{t[0]} {t[1]}, {t[2]}, out"),
    st.sampled_from(["call ktime_get_ns", "call get_prandom_u32", "be16 r1",
                     "be32 r2", "le64 r3", "neg r4"]),
)


@settings(max_examples=300, deadline=None)
@given(lines=st.lists(_line, min_size=1, max_size=30))
def test_verified_programs_never_fault(lines):
    """Anything the verifier accepts runs cleanly and deterministically."""
    source = "\n".join(lines) + "\nout:\nmov r0, 0\nexit"
    try:
        prog = Program(source, jit=False)
    except (VerifierError, AsmError, BpfError):
        return  # rejected — also a correct outcome
    # Accepted: must run without faulting in both engines and agree.
    import random

    results = []
    for engine in (Interpreter(prog.insns), JitProgram(prog.insns)):
        mem = Memory()
        skb = SkbContext(mem, PKT)
        hctx = HelperContext(mem, skb, clock_ns=lambda: 42, rng=random.Random(1))
        results.append(engine.run(hctx, skb.ctx_addr, skb.stack_top))
    assert results[0] == results[1]


# --- same property through the kernel-syntax frontend ------------------------

_EASM_REGS = [f"r{i}" for i in range(10)]
_EASM_WREGS = [f"w{i}" for i in range(10)]

# A prologue makes every register a known scalar and initialises the
# stack window the generated loads touch, so most samples *verify* and
# the differential property gets real coverage instead of 99% rejects.
_EASM_PROLOGUE = [f"r{i} = {i + 1}" for i in range(10)] + [
    f"*(u64 *)(r10 - {off}) = r{off % 8}" for off in range(8, 72, 8)
]

_easm_line = st.one_of(
    # alu64 / alu32 compound assignments and moves
    st.tuples(
        st.sampled_from(["=", "+=", "-=", "*=", "&=", "|=", "^="]),
        st.sampled_from(_EASM_REGS),
        st.one_of(st.sampled_from(_EASM_REGS), st.integers(-1000, 1000)),
    ).map(lambda t: f"{t[1]} {t[0]} {t[2]}"),
    # shifts stay in range; div/mod immediates stay non-zero (a zero
    # immediate is a verifier reject — covered by the corpus instead)
    st.tuples(
        st.sampled_from(["<<=", ">>=", "s>>="]),
        st.sampled_from(_EASM_REGS),
        st.integers(0, 63),
    ).map(lambda t: f"{t[1]} {t[0]} {t[2]}"),
    st.tuples(
        st.sampled_from(["/=", "%="]),
        st.sampled_from(_EASM_REGS),
        st.one_of(st.sampled_from(_EASM_REGS), st.integers(1, 1000)),
    ).map(lambda t: f"{t[1]} {t[0]} {t[2]}"),
    st.tuples(
        st.sampled_from(["=", "+=", "&="]),
        st.sampled_from(_EASM_WREGS),
        st.one_of(st.sampled_from(_EASM_WREGS), st.integers(0, 1000)),
    ).map(lambda t: f"{t[1]} {t[0]} {t[2]}"),
    # stack traffic
    st.tuples(
        st.sampled_from(["u8", "u16", "u32", "u64"]),
        st.integers(-64, -8),
        st.sampled_from(_EASM_REGS),
    ).map(lambda t: f"*({t[0]} *)(r10 {t[1]:+d}) = {t[2]}".replace("+", "+ ").replace("-", "- ")),
    st.tuples(
        st.sampled_from(["u8", "u16", "u32", "u64"]),
        st.sampled_from(_EASM_REGS),
        st.integers(-64, -8),
    ).map(lambda t: f"{t[1]} = *({t[0]} *)(r10 {t[2]:+d})".replace("-", "- ")),
    # branches, swaps, negation, helpers
    st.tuples(
        st.sampled_from(["==", "!=", ">", "<", "s>", "s<", "&"]),
        st.sampled_from(_EASM_REGS),
        st.integers(-100, 100),
    ).map(lambda t: f"if {t[1]} {t[0]} {t[2]} goto out"),
    st.sampled_from([
        "r1 = be16 r1", "r2 = be32 r2", "r3 = le64 r3", "r4 = -r4",
        "call ktime_get_ns", "call get_prandom_u32", "call get_smp_processor_id",
    ]),
)


@settings(max_examples=300, deadline=None)
@given(lines=st.lists(_easm_line, min_size=1, max_size=30))
def test_easm_programs_agree_across_engines_including_helper_traces(lines):
    """load_text acceptances run identically on VM and JIT — return value,
    helper-call trace (name, args, ret) and printk log all match."""
    from repro.ebpf.text import load_text

    source = "\n".join(f"    {line}" for line in (*_EASM_PROLOGUE, *lines))
    source += "\nout:\n    r0 = 0\n    exit"
    try:
        prog = load_text(source, name="fuzz", jit=True)
    except (VerifierError, AsmError, BpfError):
        return  # rejected — also a correct outcome
    import random

    outcomes = []
    for engine in (prog._interp, prog._jit):
        hctx = prog.make_context(
            PKT, clock_ns=lambda: 42, rng=random.Random(7)
        )
        hctx.helper_trace = []
        ret = engine.run(hctx, hctx.skb.ctx_addr, hctx.skb.stack_top)
        outcomes.append((ret, tuple(hctx.helper_trace), tuple(hctx.trace_log)))
    vm_out, jit_out = outcomes
    assert vm_out == jit_out
    # Helper calls were actually traced when the source contains any.
    if any(line.startswith("call") for line in lines) and vm_out[1]:
        name, args, ret = vm_out[1][0]
        assert isinstance(name, str) and isinstance(args, tuple)


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=120))
def test_srh_parser_never_crashes(data):
    try:
        srh = SRH.parse(data)
    except ValueError:
        return
    # Successfully parsed SRHs re-serialise to the bytes they came from.
    assert srh.pack() == data[: srh.wire_len]


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=60))
def test_tlv_parser_never_crashes(data):
    try:
        tlvs = parse_tlvs(data)
    except ValueError:
        return
    assert sum(t.wire_len for t in tlvs) == len(data)


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=80))
def test_ipv6_parser_never_crashes(data):
    try:
        header = IPv6Header.parse(data)
    except ValueError:
        return
    assert header.pack() == data[:40]


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=40, max_size=200))
def test_datapath_survives_wire_garbage(data):
    """A router fed arbitrary bytes must drop or forward, never raise."""
    node = repro.net.Node("F")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00::1")
    node.add_route("::/0", via="fc00::2", dev="eth1")
    node.receive(Packet(data), node.devices["eth0"])


@settings(max_examples=150, deadline=None)
@given(data=st.binary(min_size=40, max_size=200))
def test_end_bpf_survives_wire_garbage(data):
    """Garbage routed into an End.BPF segment is handled cleanly."""
    from repro.net import EndBPF, SEG6LOCAL_HELPERS
    from repro.progs import tag_increment_prog

    node = repro.net.Node("F")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00::1")
    node.add_route("::/0", encap=EndBPF(tag_increment_prog()))
    node.receive(Packet(data), node.devices["eth0"])


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=150))
def test_validate_srh_bytes_never_crashes(data):
    try:
        validate_srh_bytes(data)
    except ValueError:
        pass
