"""Robustness fuzzing: the safety contracts the paper depends on.

Two invariants matter most for a system that runs operator-supplied code
in the forwarding path (§3: eBPF code cannot compromise the kernel):

1. **Verified programs never fault.**  Whatever the verifier accepts
   must execute without memory faults in both engines, and both engines
   must agree on the result.
2. **Parsers never crash on wire garbage.**  Malformed SRHs, TLVs and
   headers raise clean ``ValueError``s (and the datapath drops), never
   arbitrary exceptions.
"""

import pytest
from hypothesis import given, settings, strategies as st

import repro.net  # noqa: F401
from repro.ebpf import (
    HelperContext,
    JitProgram,
    Memory,
    Program,
    SkbContext,
    VerifierError,
    assemble,
)
from repro.ebpf.errors import AsmError, BpfError
from repro.ebpf.vm import Interpreter
from repro.net import IPv6Header, Packet, SRH, validate_srh_bytes
from repro.net.srh import parse_tlvs

PKT = b"\x60" + b"\x00" * 63


# --- random-program construction ---------------------------------------------

_REGS = [f"r{i}" for i in range(10)]

_line = st.one_of(
    st.tuples(
        st.sampled_from(["mov", "add", "sub", "mul", "div", "or", "and", "xor",
                         "lsh", "rsh", "arsh", "mod"]),
        st.sampled_from(_REGS),
        st.one_of(st.sampled_from(_REGS), st.integers(-1000, 1000)),
    ).map(lambda t: f"{t[0]} {t[1]}, {t[2]}"),
    st.tuples(
        st.sampled_from(["ldxdw", "ldxw", "ldxh", "ldxb"]),
        st.sampled_from(_REGS),
        st.integers(-64, 8),
    ).map(lambda t: f"{t[0]} {t[1]}, [r10{t[2]:+d}]"),
    st.tuples(
        st.sampled_from(["stxdw", "stxw", "stxh", "stxb"]),
        st.integers(-64, 8),
        st.sampled_from(_REGS),
    ).map(lambda t: f"{t[0]} [r10{t[1]:+d}], {t[2]}"),
    st.tuples(
        st.sampled_from(["jeq", "jne", "jgt", "jlt", "jsgt", "jslt"]),
        st.sampled_from(_REGS),
        st.integers(-100, 100),
    ).map(lambda t: f"{t[0]} {t[1]}, {t[2]}, out"),
    st.sampled_from(["call ktime_get_ns", "call get_prandom_u32", "be16 r1",
                     "be32 r2", "le64 r3", "neg r4"]),
)


@settings(max_examples=300, deadline=None)
@given(lines=st.lists(_line, min_size=1, max_size=30))
def test_verified_programs_never_fault(lines):
    """Anything the verifier accepts runs cleanly and deterministically."""
    source = "\n".join(lines) + "\nout:\nmov r0, 0\nexit"
    try:
        prog = Program(source, jit=False)
    except (VerifierError, AsmError, BpfError):
        return  # rejected — also a correct outcome
    # Accepted: must run without faulting in both engines and agree.
    import random

    results = []
    for engine in (Interpreter(prog.insns), JitProgram(prog.insns)):
        mem = Memory()
        skb = SkbContext(mem, PKT)
        hctx = HelperContext(mem, skb, clock_ns=lambda: 42, rng=random.Random(1))
        results.append(engine.run(hctx, skb.ctx_addr, skb.stack_top))
    assert results[0] == results[1]


@settings(max_examples=300, deadline=None)
@given(data=st.binary(max_size=120))
def test_srh_parser_never_crashes(data):
    try:
        srh = SRH.parse(data)
    except ValueError:
        return
    # Successfully parsed SRHs re-serialise to the bytes they came from.
    assert srh.pack() == data[: srh.wire_len]


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=60))
def test_tlv_parser_never_crashes(data):
    try:
        tlvs = parse_tlvs(data)
    except ValueError:
        return
    assert sum(t.wire_len for t in tlvs) == len(data)


@settings(max_examples=200, deadline=None)
@given(data=st.binary(max_size=80))
def test_ipv6_parser_never_crashes(data):
    try:
        header = IPv6Header.parse(data)
    except ValueError:
        return
    assert header.pack() == data[:40]


@settings(max_examples=200, deadline=None)
@given(data=st.binary(min_size=40, max_size=200))
def test_datapath_survives_wire_garbage(data):
    """A router fed arbitrary bytes must drop or forward, never raise."""
    node = repro.net.Node("F")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00::1")
    node.add_route("::/0", via="fc00::2", dev="eth1")
    node.receive(Packet(data), node.devices["eth0"])


@settings(max_examples=150, deadline=None)
@given(data=st.binary(min_size=40, max_size=200))
def test_end_bpf_survives_wire_garbage(data):
    """Garbage routed into an End.BPF segment is handled cleanly."""
    from repro.net import EndBPF, SEG6LOCAL_HELPERS
    from repro.progs import tag_increment_prog

    node = repro.net.Node("F")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00::1")
    node.add_route("::/0", encap=EndBPF(tag_increment_prog()))
    node.receive(Packet(data), node.devices["eth0"])


@settings(max_examples=100, deadline=None)
@given(data=st.binary(max_size=150))
def test_validate_srh_bytes_never_crashes(data):
    try:
        validate_srh_bytes(data)
    except ValueError:
        pass
