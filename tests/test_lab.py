"""The repro.lab builder: construction semantics, behavioural equivalence
to the hand-wired setups it replaced, and seeded bit-reproducibility.

The equivalence tests are the acceptance gate of the NetLab redesign:
the seed repository wired Setup 1 / Setup 2 by hand (raw ``Node`` /
``Link`` / ``add_route`` calls); those wirings are replicated verbatim
below and driven through identical workloads — the builder-made network
must produce byte-identical packet deliveries (payload *and* timing) and
identical datapath counters.
"""

import pytest

from repro.lab import Network, Setup1, Setup2, Topo, build_setup1, build_setup2
from repro.net import EndBPF, Node, ntop
from repro.net.iproute import IpRouteError
from repro.progs import end_prog
from repro.sim import Link, NetemQdisc, Scheduler, Srv6UdpFlood, UdpFlow
from repro.sim.scheduler import NS_PER_SEC
from repro.sim.trafgen import batch_udp
from repro.usecases import deploy_hybrid_access


# --- builder construction semantics -------------------------------------------


def test_add_link_autocreates_and_autonames_devices():
    net = Network()
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B")
    net.add_link("A", "B")
    assert list(net["A"].devices) == ["eth0", "eth1"]
    assert list(net["B"].devices) == ["eth0", "eth1"]
    assert net["A"].devices["eth0"].link_endpoint is not None


def test_add_node_auto_address_is_unique():
    net = Network()
    a = net.add_node("A")
    b = net.add_node("B")
    assert a.addresses and b.addresses
    assert a.addresses[0] != b.addresses[0]
    assert ntop(a.addresses[0]).startswith("fd00::")


def test_add_node_empty_addr_tuple_means_no_address():
    net = Network()
    node = net.add_node("A", addr=())
    assert node.addresses == []


def test_duplicate_node_name_rejected():
    net = Network()
    net.add_node("A")
    with pytest.raises(ValueError, match="already exists"):
        net.add_node("A")


def test_unknown_node_lookup_raises():
    net = Network()
    with pytest.raises(KeyError, match="no node named"):
        net.node("missing")


def test_link_shorthand_attaches_netem_both_directions():
    net = Network()
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B", 1e9, 2_000_000, jitter_ns=500_000, loss=0.1)
    qa = net.qdiscs[("A", "eth0")]
    qb = net.qdiscs[("B", "eth0")]
    # The latency budget moved into the netem (mean stays delay_ns).
    assert qa.delay_ns == 2_000_000 and qa.jitter_ns == 500_000 and qa.loss == 0.1
    assert qb.delay_ns == 2_000_000
    assert qa.rng.getstate() != qb.rng.getstate()  # distinct per-direction seeds


def test_config_routes_through_textual_plane_end_to_end():
    net = Network()
    net.add_node("R", addr="fc00:e::1", devices=("eth0", "eth1"))
    net.config("R", "ip -6 route add fc00:2::/64 via fc00:2::1 dev eth1")
    for pkt in batch_udp("fc00:1::1", "fc00:2::2", 3):
        net["R"].receive(pkt, net["R"].devices["eth0"])
    assert len(net["R"].devices["eth1"].tx_buffer) == 3
    net.config("R", "ip -6 route del fc00:2::/64")
    net["R"].receive(batch_udp("fc00:1::1", "fc00:2::2", 1)[0], net["R"].devices["eth0"])
    assert net["R"].counters.no_route == 1


def test_config_errors_surface_as_iproute_errors():
    net = Network()
    net.add_node("R")
    with pytest.raises(IpRouteError):
        net.config("R", "ip -6 route del fc00:9::/64")


def test_attach_wraps_bare_program_in_end_bpf():
    net = Network()
    net.add_node("R", addr="fc00:e::1", devices=("eth0", "eth1"))
    net.config("R", "route add fc00:2::/64 via fc00:2::1 dev eth1")
    net.attach("R", "fc00:e::100", end_prog())
    from repro.net import make_srv6_udp_packet

    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    net["R"].receive(pkt, net["R"].devices["eth0"])
    assert len(net["R"].devices["eth1"].tx_buffer) == 1
    assert net["R"].counters.seg6local_processed == 1


def test_attach_registers_program_so_route_show_replays():
    """attach()-installed End.BPF programs round-trip through route show."""
    net = Network()
    net.add_node("R", addr="fc00:e::1", devices=("eth0", "eth1"))
    net.config("R", "route add fc00:2::/64 via fc00:2::1 dev eth1")
    net.attach("R", "fc00:e::100", end_prog())
    shown = [line for line in net.config("R", "route show") if not line.startswith("local")]
    assert any("endpoint obj" in line for line in shown)

    replica = Network(objects=net.objects)  # shared registry, as a controller would
    replica.add_node("R2", addr=(), devices=("eth0", "eth1"))
    for line in shown:
        replica.config("R2", f"route add {line}")
    from repro.net import make_srv6_udp_packet

    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    replica["R2"].receive(pkt, replica["R2"].devices["eth0"])
    assert len(replica["R2"].devices["eth1"].tx_buffer) == 1


def test_attach_rejects_non_actions():
    net = Network()
    net.add_node("R")
    with pytest.raises(TypeError, match="Seg6LocalAction"):
        net.attach("R", "fc00::1", object())


# --- textual eBPF programs through net.load -----------------------------------

_END_S = """
.hook seg6local
    r0 = 0          ; BPF_OK -- let End.BPF advance the SRH
    exit
"""


def _srv6_network():
    net = Network()
    net.add_node("R", addr="fc00:e::1", devices=("eth0", "eth1"))
    net.config("R", "route add fc00:2::/64 via fc00:2::1 dev eth1")
    return net


def test_load_accepts_asm_text_and_route_references_it():
    net = _srv6_network()
    prog = net.load("myend", _END_S)
    from repro.ebpf import Program

    assert isinstance(prog, Program)
    net.config(
        "R",
        "route add fc00:e::100/128 encap seg6local action End.BPF "
        "endpoint obj myend dev eth0",
    )
    from repro.net import make_srv6_udp_packet

    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    net["R"].receive(pkt, net["R"].devices["eth0"])
    assert len(net["R"].devices["eth1"].tx_buffer) == 1
    assert net["R"].counters.seg6local_processed == 1


def test_load_accepts_a_path(tmp_path):
    source = tmp_path / "end.s"
    source.write_text(_END_S)
    net = _srv6_network()
    net.load("myend", source)
    assert "myend" in net.objects


def test_load_bad_syntax_fails_cleanly_at_load_time():
    from repro.ebpf.errors import AsmError

    net = Network()
    net.add_node("R")
    with pytest.raises(AsmError, match="line 2: cannot parse instruction"):
        net.load("bad", "    r0 = 0\n    frobnicate r1\n    exit\n")
    assert "bad" not in net.objects  # nothing half-registered


def test_load_unverifiable_text_fails_at_load_time():
    from repro.ebpf import VerifierError

    net = Network()
    net.add_node("R")
    with pytest.raises(VerifierError):
        net.load("leaky", "    r0 = r2\n    exit\n")  # r2 never initialised
    assert "leaky" not in net.objects


def test_load_textual_with_shared_map():
    from repro.ebpf import ArrayMap

    hits = ArrayMap("hits", 8, 1)
    net = _srv6_network()
    net.load(
        "counting_end",
        """
.hook seg6local
.map hits, array, key=4, value=8, entries=1
    r1 = hits ll
    *(u32 *)(r10 - 4) = 0
    r2 = r10
    r2 += -4
    call map_lookup_elem
    if r0 == 0 goto out
    r1 = *(u64 *)(r0 + 0)
    r1 += 1
    *(u64 *)(r0 + 0) = r1
out:
    r0 = 0
    exit
""",
        maps={"hits": hits},
    )
    net.config(
        "R",
        "route add fc00:e::100/128 encap seg6local action End.BPF "
        "endpoint obj counting_end dev eth0",
    )
    from repro.net import make_srv6_udp_packet

    for _ in range(2):
        pkt = make_srv6_udp_packet(
            "fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x"
        )
        net["R"].receive(pkt, net["R"].devices["eth0"])
    count = int.from_bytes(hits.lookup((0).to_bytes(4, "little")), "little")
    assert count == 2


def test_load_maps_kwarg_rejected_for_prebuilt_programs():
    net = Network()
    net.add_node("R")
    with pytest.raises(TypeError, match="textual"):
        net.load("p", end_prog(), maps={})


def test_run_returns_event_count_and_supports_with():
    net = Network()
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B", 1e9, 1000)
    net.config("A", "route add fc00:b::/64 via fc00:b::1 dev eth0")
    net.config("B", "route add fc00:a::/64 via fc00:a::1 dev eth0")
    meter = net.sink("B", port=5201)
    flow = net.trafgen("A", dst="fc00:b::1", rate_bps=10e6, payload_size=100)
    flow.start(duration_ns=NS_PER_SEC // 100)
    with net.run(until_ns=NS_PER_SEC // 10) as executed:
        assert int(executed) > 0
        assert meter.packets == flow.stats.sent > 0
    assert net.now_ns == NS_PER_SEC // 10


def test_topo_subclass_params_flow_into_build():
    class Line(Topo):
        def build(self, hops: int = 2):
            last = None
            for i in range(hops):
                self.add_node(f"N{i}", addr=f"fc00:{i + 1:x}::1")
                if last is not None:
                    self.add_link(last, f"N{i}", 1e9, 1000)
                last = f"N{i}"

    topo = Line(hops=4)
    assert len(topo.net.nodes) == 4
    assert len(topo.net.links) == 3
    assert topo["N3"].name == "N3"


# --- behavioural equivalence: builder vs the seed's hand wiring ---------------
#
# The two replicas below are the pre-NetLab builders, copied verbatim
# (raw Node/Link construction and add_route calls).  They are the
# reference implementation the declarative Topo subclasses must match
# byte for byte.


def handwired_setup1(rate_bps: float = 10e9, link_delay_ns: int = 5000) -> Setup1:
    scheduler = Scheduler()
    clock = scheduler.now_fn()
    s1 = Node("S1", clock_ns=clock)
    r = Node("R", clock_ns=clock)
    s2 = Node("S2", clock_ns=clock)
    s1.add_device("eth0")
    r.add_device("eth0")
    r.add_device("eth1")
    s2.add_device("eth0")
    s1.add_address(Setup1.S1_ADDR)
    r.add_address(Setup1.R_ADDR)
    s2.add_address(Setup1.S2_ADDR)
    links = [
        Link(scheduler, s1.devices["eth0"], r.devices["eth0"], rate_bps, link_delay_ns),
        Link(scheduler, r.devices["eth1"], s2.devices["eth0"], rate_bps, link_delay_ns),
    ]
    s1.add_route("::/0", via="fc00:1::ff", dev="eth0")
    r.add_route("fc00:1::/64", via=Setup1.S1_ADDR, dev="eth0")
    r.add_route("fc00:2::/64", via=Setup1.S2_ADDR, dev="eth1")
    s2.add_route("::/0", via="fc00:2::ff", dev="eth0")
    return Setup1(scheduler, s1, r, s2, links)


def handwired_setup2(seed: int = 7) -> Setup2:
    from repro.lab.setups import PAPER_LINK0, PAPER_LINK1

    link0, link1, lan_rate_bps = PAPER_LINK0, PAPER_LINK1, 1e9
    scheduler = Scheduler()
    clock = scheduler.now_fn()
    s1 = Node("S1", clock_ns=clock)
    a = Node("A", clock_ns=clock)
    r = Node("R", clock_ns=clock)
    m = Node("M", clock_ns=clock)
    s2 = Node("S2", clock_ns=clock)
    s1.add_device("eth0")
    a.add_device("wan")
    a.add_device("dsl")
    a.add_device("lte")
    r.add_device("a0")
    r.add_device("a1")
    r.add_device("m0")
    r.add_device("m1")
    m.add_device("dsl")
    m.add_device("lte")
    m.add_device("lan")
    s2.add_device("eth0")
    s1.add_address(Setup2.S1_ADDR)
    a.add_address(Setup2.A_ADDR)
    r.add_address("fc00:ee::1")
    m.add_address(Setup2.M_ADDR)
    s2.add_address(Setup2.S2_ADDR)
    fast = 1e9
    links = [
        Link(scheduler, s1.devices["eth0"], a.devices["wan"], lan_rate_bps, 100_000),
        Link(scheduler, a.devices["dsl"], r.devices["a0"], fast, 10_000),
        Link(scheduler, a.devices["lte"], r.devices["a1"], fast, 10_000),
        Link(scheduler, r.devices["m0"], m.devices["dsl"], fast, 10_000),
        Link(scheduler, r.devices["m1"], m.devices["lte"], fast, 10_000),
        Link(scheduler, m.devices["lan"], s2.devices["eth0"], lan_rate_bps, 10_000),
    ]
    shapers = {}
    for devname, spec, seed_off in (
        ("m0", link0, 0),
        ("a0", link0, 1),
        ("m1", link1, 2),
        ("a1", link1, 3),
    ):
        qdisc = NetemQdisc(
            scheduler,
            rate_bps=spec.rate_bps,
            delay_ns=spec.one_way_ns,
            jitter_ns=spec.one_way_jitter_ns,
            seed=seed + seed_off,
        )
        r.devices[devname].qdisc = qdisc
        shapers[devname] = qdisc
    for seg, a_dev, m_dev in ((0, "a0", "m0"), (1, "a1", "m1")):
        r.add_route(f"{Setup2.M_SEG[seg]}/128", via=Setup2.M_ADDR, dev=m_dev)
        r.add_route(f"{Setup2.M_DM_SEG[seg]}/128", via=Setup2.M_ADDR, dev=m_dev)
        r.add_route(f"{Setup2.A_SEG[seg]}/128", via=Setup2.A_ADDR, dev=a_dev)
    r.add_route("fc00:2::/64", via=Setup2.M_ADDR, dev="m0")
    r.add_route("fc00:bb::/64", via=Setup2.M_ADDR, dev="m0")
    r.add_route("fc00:1::/64", via=Setup2.A_ADDR, dev="a0")
    r.add_route("fc00:aa::/64", via=Setup2.A_ADDR, dev="a0")
    s1.add_route("::/0", via=Setup2.A_ADDR, dev="eth0")
    s2.add_route("::/0", via=Setup2.M_ADDR, dev="eth0")
    a.add_route("fc00:1::/64", via=Setup2.S1_ADDR, dev="wan")
    a.add_route(f"{Setup2.M_SEG[0]}/128", via="fc00:ee::1", dev="dsl")
    a.add_route(f"{Setup2.M_SEG[1]}/128", via="fc00:ee::1", dev="lte")
    a.add_route(f"{Setup2.M_DM_SEG[0]}/128", via="fc00:ee::1", dev="dsl")
    a.add_route(f"{Setup2.M_DM_SEG[1]}/128", via="fc00:ee::1", dev="lte")
    a.add_route("fc00:2::/64", via="fc00:ee::1", dev="dsl")
    a.add_route("fc00:bb::/64", via="fc00:ee::1", dev="dsl")
    m.add_route("fc00:2::/64", via=Setup2.S2_ADDR, dev="lan")
    m.add_route(f"{Setup2.A_SEG[0]}/128", via="fc00:ee::1", dev="dsl")
    m.add_route(f"{Setup2.A_SEG[1]}/128", via="fc00:ee::1", dev="lte")
    m.add_route("fc00:1::/64", via="fc00:ee::1", dev="dsl")
    m.add_route("fc00:aa::/64", via="fc00:ee::1", dev="dsl")
    return Setup2(scheduler, s1, a, r, m, s2, links, shapers)


def record_sink(setup):
    """Capture every S2 delivery as (arrival time, wire bytes)."""
    deliveries = []
    setup.s2.bind(
        lambda pkt, node: deliveries.append((node.clock_ns(), bytes(pkt.data))),
        proto=17,
        port=5201,
    )
    return deliveries


def drive_setup1(setup) -> list:
    """The §3.2 workload: SRv6 flood through End.BPF plus plain UDP."""
    deliveries = record_sink(setup)
    setup.r.add_route(f"{Setup1.FUNC_SEGMENT}/128", encap=EndBPF(end_prog()))
    setup.s1.add_route(f"{Setup1.FUNC_SEGMENT}/128", via="fc00:1::ff", dev="eth0")
    flood = Srv6UdpFlood(
        setup.scheduler,
        setup.s1,
        "fc00:1::1",
        [Setup1.FUNC_SEGMENT, "fc00:2::2"],
        rate_bps=50e6,
        payload_size=64,
    )
    plain = UdpFlow(
        setup.scheduler, setup.s1, "fc00:1::1", "fc00:2::2",
        rate_bps=20e6, payload_size=200, src_port=41000,
    )
    flood.start(duration_ns=NS_PER_SEC // 20)
    plain.start(duration_ns=NS_PER_SEC // 20)
    setup.scheduler.run(until_ns=NS_PER_SEC // 5)
    assert deliveries, "workload produced no deliveries"
    return deliveries


def test_setup1_round_trip_equivalence():
    """builder-made Setup 1 == hand-wired Setup 1, byte for byte."""
    built = build_setup1()
    wired = handwired_setup1()
    built_deliveries = drive_setup1(built)
    wired_deliveries = drive_setup1(wired)
    assert built_deliveries == wired_deliveries  # timing AND payload bytes
    assert built.r.counters == wired.r.counters
    assert built.s1.counters == wired.s1.counters
    assert built.s2.counters == wired.s2.counters
    for built_link, wired_link in zip(built.links, wired.links):
        assert built_link.a_to_b.stats == wired_link.a_to_b.stats
        assert built_link.b_to_a.stats == wired_link.b_to_a.stats
    assert built.scheduler.events_run == wired.scheduler.events_run


def drive_setup2(setup) -> list:
    """§4.2 UDP over the WRR bond (netem shaping + eBPF + decap live)."""
    deliveries = record_sink(setup)
    deploy_hybrid_access(setup, weights=(5, 3))
    flow = UdpFlow(
        setup.scheduler, setup.s1, "fc00:1::1", "fc00:2::2",
        rate_bps=60e6, payload_size=1400,
    )
    flow.start(duration_ns=NS_PER_SEC // 4)
    setup.scheduler.run(until_ns=NS_PER_SEC // 2)
    assert deliveries, "workload produced no deliveries"
    return deliveries


def test_setup2_round_trip_equivalence():
    """builder-made Setup 2 == hand-wired Setup 2, through the full bond."""
    built = build_setup2()
    wired = handwired_setup2()
    built_deliveries = drive_setup2(built)
    wired_deliveries = drive_setup2(wired)
    assert built_deliveries == wired_deliveries
    for name in ("s1", "a", "r", "m", "s2"):
        assert getattr(built, name).counters == getattr(wired, name).counters
    for dev in ("m0", "a0", "m1", "a1"):
        assert built.shapers[dev].stats == wired.shapers[dev].stats
    assert built.scheduler.events_run == wired.scheduler.events_run


# --- seeded reproducibility ---------------------------------------------------


def seeded_run(seed: int) -> list:
    net = Network(seed=seed)
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B", 50e6, 1_000_000, jitter_ns=400_000, loss=0.02)
    net.config("A", "route add fc00:b::/64 via fc00:b::1 dev eth0")
    net.config("B", "route add fc00:a::/64 via fc00:a::1 dev eth0")
    deliveries = []
    net["B"].bind(
        lambda pkt, node: deliveries.append((node.clock_ns(), bytes(pkt.data))),
        proto=17,
        port=5201,
    )
    flow = net.trafgen(
        "A", dst="fc00:b::1", rate_bps=10e6, payload_size=256, src_port_spread=1000
    )
    flow.start(duration_ns=NS_PER_SEC // 10)
    net.run(until_ns=NS_PER_SEC // 2)
    assert deliveries
    return deliveries


def test_same_seed_bit_reproducible():
    """Network(seed=N) twice: identical netem draws, ports and timings."""
    assert seeded_run(42) == seeded_run(42)


def test_different_seed_differs():
    a, b = seeded_run(42), seeded_run(43)
    assert a != b  # ports and jitter/loss draws all re-derive from the seed


def ecmp_placement(seed: int | None) -> tuple:
    """Which flows land on which of three equal-cost devices."""
    net = Network(seed=seed)
    net.add_node("R", addr="fc00:e::1", devices=("in", "d0", "d1", "d2"))
    net.config(
        "R",
        "route add fc00:2::/64 "
        "nexthop via fc00:aa::1 dev d0 "
        "nexthop via fc00:bb::1 dev d1 "
        "nexthop via fc00:cc::1 dev d2",
    )
    node = net["R"]
    for pkt in batch_udp("fc00:1::1", "fc00:2::2", 96):
        node.receive(pkt, node.devices["in"])
    return tuple(
        frozenset(pkt.l4()[1] for pkt in node.devices[dev].tx_buffer)
        for dev in ("d0", "d1", "d2")
    )


def test_ecmp_seed_salts_nexthop_selection():
    """The experiment seed perturbs ECMP placement; same seed, same split."""
    assert ecmp_placement(1) == ecmp_placement(1)
    placements = {ecmp_placement(seed) for seed in (None, 1, 2, 3, 4)}
    assert len(placements) > 1  # the salt really participates in the hash


def test_seeded_node_rng_is_deterministic():
    one = Network(seed=9).add_node("X").rng.random()
    two = Network(seed=9).add_node("X").rng.random()
    assert one == two
    assert Network(seed=10).add_node("X").rng.random() != one


def test_add_link_rejects_shorthand_and_explicit_netem_together():
    net = Network()
    net.add_node("A")
    net.add_node("B")
    with pytest.raises(ValueError, match="not both"):
        net.add_link("A", "B", jitter_ns=100, netem={"rate_bps": 1e6})


def test_derive_seed_uses_full_seed_width():
    assert Network(seed=0).derive_seed("x") != Network(seed=1 << 32).derive_seed("x")


def test_topo_rejects_net_and_seed_together():
    with pytest.raises(ValueError, match="not both"):
        Topo(net=Network(), seed=3)
