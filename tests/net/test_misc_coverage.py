"""Cross-cutting coverage: disassembly of the paper programs, LWT xmit
hook, multiple routing tables, packet traces, netdev stats."""

import pytest

from repro.ebpf import ArrayMap, PerfEventArrayMap, Program, assemble, disassemble
from repro.net import (
    BpfLwt,
    LWT_HELPERS,
    Node,
    make_udp_packet,
    pton,
)
from repro.progs import (
    ADD_TLV_ASM,
    END_PROG_ASM,
    TAG_INCREMENT_ASM,
    dm_encap_prog,
    end_dm_prog,
    end_oamp_prog,
    wrr_prog,
)


# --- disassembler round-trips on every paper program --------------------------


@pytest.mark.parametrize(
    "source", [END_PROG_ASM, TAG_INCREMENT_ASM, ADD_TLV_ASM],
    ids=["end", "tag", "add_tlv"],
)
def test_paper_source_disassembles_and_reassembles(source):
    insns = assemble(source)
    text = disassemble(insns)
    again = assemble(text)
    assert [i.encode() for i in again] == [i.encode() for i in insns]


def test_loaded_programs_disassemble_with_map_names():
    config = ArrayMap("dm_config", value_size=40, max_entries=1)
    prog = dm_encap_prog(config)
    text = disassemble(prog.insns)
    assert "lddw r1, map:" in text  # map reference preserved for readers
    assert "call lwt_push_encap" in text
    assert "call ktime_get_ns" in text


@pytest.mark.parametrize(
    "factory",
    [
        lambda: end_dm_prog(PerfEventArrayMap("dc_ev")),
        lambda: end_oamp_prog(PerfEventArrayMap("dc_ev2")),
        lambda: wrr_prog(
            ArrayMap("dc_c", 40, 1), ArrayMap("dc_s", 16, 1)
        ),
    ],
    ids=["end_dm", "end_oamp", "wrr"],
)
def test_complex_programs_disassemble(factory):
    prog = factory()
    text = disassemble(prog.insns)
    assert text.count("\n") >= prog.num_insns - 2


# --- LWT xmit hook ---------------------------------------------------------------


def test_lwt_xmit_hook_runs_after_out():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00:e::1")
    order = []

    def make_marker(value):
        # Programs that stamp the packet mark so the order is observable.
        return Program(
            f"mov r2, {value}\nstxw [r1+8], r2\nmov r0, 0\nexit",
            allowed_helpers=LWT_HELPERS,
        )

    lwt = BpfLwt(prog_out=make_marker(1), prog_xmit=make_marker(2))
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1", encap=lwt)
    node.receive(make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x"), node.devices["eth0"])
    out = node.devices["eth1"].tx_buffer.pop()
    assert out.mark == 2  # xmit ran last
    assert lwt.stats["ok"] == 2


# --- multiple routing tables --------------------------------------------------------


def test_tables_are_isolated():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00:e::1")
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth0", table_id=254)
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1", table_id=100)
    assert node.table(254).lookup(pton("fc00:2::1")).nexthops[0].dev == "eth0"
    assert node.table(100).lookup(pton("fc00:2::1")).nexthops[0].dev == "eth1"
    assert len(node.tables) == 2


def test_table_created_on_demand():
    node = Node("R")
    table = node.table(42)
    assert table.table_id == 42
    assert len(table) == 0


# --- packet traces and device stats ------------------------------------------------------


def test_packet_trace_records_transit_nodes():
    a = Node("A")
    a.add_device("eth0")
    a.add_device("eth1")
    a.add_address("fc00::a")
    a.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1")
    pkt = make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x")
    a.receive(pkt, a.devices["eth0"])
    forwarded = a.devices["eth1"].tx_buffer.pop()
    assert forwarded.trace == ["A"]


def test_netdev_stats_count_tx_rx():
    node = Node("N")
    dev = node.add_device("eth0")
    node.add_address("fc00::1")
    pkt = make_udp_packet("fc00::2", "fc00::1", 1, 2, b"abc")
    dev.receive(pkt)
    assert dev.stats.rx_packets == 1
    assert dev.stats.rx_bytes == len(pkt)
    node2 = Node("M")
    dev2 = node2.add_device("eth0")
    dev2.transmit(pkt)
    assert dev2.stats.tx_packets == 1
    assert dev2.tx_buffer  # no link attached: buffered for inspection


def test_input_dev_recorded():
    node = Node("N")
    dev = node.add_device("eth7")
    node.add_address("fc00::1")
    seen = []
    node.bind(lambda pkt, n: seen.append(pkt.input_dev), proto=17, port=9)
    dev.receive(make_udp_packet("fc00::2", "fc00::1", 1, 9, b""))
    assert seen == ["eth7"]
