"""iproute2-style configuration front-end."""

import pytest

from repro.ebpf import Program
from repro.net import (
    BpfLwt,
    End,
    EndB6,
    EndBPF,
    EndDT6,
    EndT,
    EndX,
    Node,
    SEG6LOCAL_HELPERS,
    Seg6Encap,
    make_srv6_udp_packet,
    pton,
)
from repro.net.iproute import IpRoute, IpRouteError


@pytest.fixture
def ip():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    prog = Program("mov r0, 0\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    return IpRoute(node, objects={"prog.o": prog})


def test_plain_route(ip):
    route = ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    assert route.prefixlen == 64
    assert route.nexthops[0].via == pton("fc00:2::1")
    assert route.nexthops[0].dev == "eth1"


def test_host_route_default_prefixlen(ip):
    route = ip.route_add("fc00::1 dev eth0")
    assert route.prefixlen == 128


def test_route_into_table(ip):
    ip.route_add("fc00:2::/64 table 100 via fc00:2::1 dev eth1")
    assert ip.node.table(100).lookup(pton("fc00:2::5")) is not None
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is None


def test_seg6_encap_modes(ip):
    route = ip.route_add(
        "fc00:2::/64 encap seg6 mode encap segs fc00::a,fc00::b dev eth1"
    )
    assert isinstance(route.encap, Seg6Encap)
    assert route.encap.mode == "encap"
    assert route.encap.segments == [pton("fc00::a"), pton("fc00::b")]
    inline = ip.route_add("fc00:3::/64 encap seg6 mode inline segs fc00::c dev eth1")
    assert inline.encap.mode == "inline"


@pytest.mark.parametrize(
    "spec,cls,attr",
    [
        ("encap seg6local action End", End, None),
        ("encap seg6local action End.X nh6 fc00::9", EndX, ("nh6", pton("fc00::9"))),
        ("encap seg6local action End.T table 42", EndT, ("table_id", 42)),
        ("encap seg6local action End.DT6 table 254", EndDT6, ("table_id", 254)),
        (
            "encap seg6local action End.B6 srh segs fc00::a,fc00::b",
            EndB6,
            ("segments", [pton("fc00::a"), pton("fc00::b")]),
        ),
    ],
)
def test_seg6local_actions(ip, spec, cls, attr):
    route = ip.route_add(f"fc00::100/128 {spec} dev eth0")
    assert isinstance(route.encap, cls)
    if attr:
        assert getattr(route.encap, attr[0]) == attr[1]


def test_end_bpf_with_object(ip):
    route = ip.route_add(
        "fc00::100/128 encap seg6local action End.BPF endpoint obj prog.o sec main dev eth0"
    )
    assert isinstance(route.encap, EndBPF)


def test_end_bpf_route_actually_works(ip):
    ip.addr_add("fc00:e::1 dev eth0")
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    ip.route_add(
        "fc00:e::100/128 encap seg6local action End.BPF endpoint obj prog.o dev eth0"
    )
    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    ip.node.receive(pkt, ip.node.devices["eth0"])
    assert len(ip.node.devices["eth1"].tx_buffer) == 1


def test_bpf_lwt_route(ip):
    route = ip.route_add("fc00:2::/64 encap bpf out obj prog.o dev eth1")
    assert isinstance(route.encap, BpfLwt)
    assert route.encap.prog_out is not None
    assert route.encap.prog_in is None


def test_ecmp_nexthop_blocks(ip):
    route = ip.route_add(
        "fc00:5::/64 nexthop via fc00::a dev eth0 weight 2 nexthop via fc00::b dev eth1"
    )
    assert len(route.nexthops) == 2
    assert route.nexthops[0].weight == 2


def test_unknown_object_rejected(ip):
    with pytest.raises(IpRouteError, match="no loaded eBPF object"):
        ip.route_add(
            "fc00::100/128 encap seg6local action End.BPF endpoint obj missing.o dev eth0"
        )


def test_unknown_keyword_rejected(ip):
    with pytest.raises(IpRouteError, match="unknown keyword"):
        ip.route_add("fc00::/64 frobnicate eth0")


def test_unknown_action_rejected(ip):
    with pytest.raises(IpRouteError, match="unknown seg6local action"):
        ip.route_add("fc00::/64 encap seg6local action End.Bogus dev eth0")


def test_truncated_command_rejected(ip):
    with pytest.raises(IpRouteError, match="expected"):
        ip.route_add("fc00::/64 encap seg6 mode encap segs")


def test_mixed_nexthop_and_via_rejected(ip):
    with pytest.raises(IpRouteError, match="not both"):
        ip.route_add("fc00::/64 via fc00::1 dev eth0 nexthop via fc00::2 dev eth1")


def test_addr_add(ip):
    ip.addr_add("fc00:e::1/64 dev eth0")
    assert pton("fc00:e::1") in ip.node.addresses
