"""iproute2-style configuration front-end."""

import pytest

from repro.ebpf import Program
from repro.net import (
    BpfLwt,
    End,
    EndB6,
    EndBPF,
    EndDT6,
    EndT,
    EndX,
    Node,
    SEG6LOCAL_HELPERS,
    Seg6Encap,
    make_srv6_udp_packet,
    pton,
)
from repro.net.iproute import IpRoute, IpRouteError


@pytest.fixture
def ip():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    prog = Program("mov r0, 0\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    return IpRoute(node, objects={"prog.o": prog})


def test_plain_route(ip):
    route = ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    assert route.prefixlen == 64
    assert route.nexthops[0].via == pton("fc00:2::1")
    assert route.nexthops[0].dev == "eth1"


def test_host_route_default_prefixlen(ip):
    route = ip.route_add("fc00::1 dev eth0")
    assert route.prefixlen == 128


def test_route_into_table(ip):
    ip.route_add("fc00:2::/64 table 100 via fc00:2::1 dev eth1")
    assert ip.node.table(100).lookup(pton("fc00:2::5")) is not None
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is None


def test_seg6_encap_modes(ip):
    route = ip.route_add(
        "fc00:2::/64 encap seg6 mode encap segs fc00::a,fc00::b dev eth1"
    )
    assert isinstance(route.encap, Seg6Encap)
    assert route.encap.mode == "encap"
    assert route.encap.segments == [pton("fc00::a"), pton("fc00::b")]
    inline = ip.route_add("fc00:3::/64 encap seg6 mode inline segs fc00::c dev eth1")
    assert inline.encap.mode == "inline"


@pytest.mark.parametrize(
    "spec,cls,attr",
    [
        ("encap seg6local action End", End, None),
        ("encap seg6local action End.X nh6 fc00::9", EndX, ("nh6", pton("fc00::9"))),
        ("encap seg6local action End.T table 42", EndT, ("table_id", 42)),
        ("encap seg6local action End.DT6 table 254", EndDT6, ("table_id", 254)),
        (
            "encap seg6local action End.B6 srh segs fc00::a,fc00::b",
            EndB6,
            ("segments", [pton("fc00::a"), pton("fc00::b")]),
        ),
    ],
)
def test_seg6local_actions(ip, spec, cls, attr):
    route = ip.route_add(f"fc00::100/128 {spec} dev eth0")
    assert isinstance(route.encap, cls)
    if attr:
        assert getattr(route.encap, attr[0]) == attr[1]


def test_end_bpf_with_object(ip):
    route = ip.route_add(
        "fc00::100/128 encap seg6local action End.BPF endpoint obj prog.o sec main dev eth0"
    )
    assert isinstance(route.encap, EndBPF)


def test_end_bpf_route_actually_works(ip):
    ip.addr_add("fc00:e::1 dev eth0")
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    ip.route_add(
        "fc00:e::100/128 encap seg6local action End.BPF endpoint obj prog.o dev eth0"
    )
    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    ip.node.receive(pkt, ip.node.devices["eth0"])
    assert len(ip.node.devices["eth1"].tx_buffer) == 1


def test_bpf_lwt_route(ip):
    route = ip.route_add("fc00:2::/64 encap bpf out obj prog.o dev eth1")
    assert isinstance(route.encap, BpfLwt)
    assert route.encap.prog_out is not None
    assert route.encap.prog_in is None


def test_ecmp_nexthop_blocks(ip):
    route = ip.route_add(
        "fc00:5::/64 nexthop via fc00::a dev eth0 weight 2 nexthop via fc00::b dev eth1"
    )
    assert len(route.nexthops) == 2
    assert route.nexthops[0].weight == 2


def test_unknown_object_rejected(ip):
    with pytest.raises(IpRouteError, match="no loaded eBPF object"):
        ip.route_add(
            "fc00::100/128 encap seg6local action End.BPF endpoint obj missing.o dev eth0"
        )


def test_unknown_keyword_rejected(ip):
    with pytest.raises(IpRouteError, match="unknown keyword"):
        ip.route_add("fc00::/64 frobnicate eth0")


def test_unknown_action_rejected(ip):
    with pytest.raises(IpRouteError, match="unknown seg6local action"):
        ip.route_add("fc00::/64 encap seg6local action End.Bogus dev eth0")


def test_truncated_command_rejected(ip):
    with pytest.raises(IpRouteError, match="expected"):
        ip.route_add("fc00::/64 encap seg6 mode encap segs")


def test_mixed_nexthop_and_via_rejected(ip):
    with pytest.raises(IpRouteError, match="not both"):
        ip.route_add("fc00::/64 via fc00::1 dev eth0 nexthop via fc00::2 dev eth1")


def test_addr_add(ip):
    ip.addr_add("fc00:e::1/64 dev eth0")
    assert pton("fc00:e::1") in ip.node.addresses


# --- route del / replace / show: the config-plane round trip ------------------


def test_route_del_removes_route(ip):
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is not None
    ip.route_del("fc00:2::/64")
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is None


def test_route_del_default_host_prefixlen(ip):
    ip.route_add("fc00::1 dev eth0")
    ip.route_del("fc00::1")
    assert ip.node.main_table().lookup(pton("fc00::1")) is None


def test_route_del_from_table(ip):
    ip.route_add("fc00:2::/64 table 100 via fc00:2::1 dev eth1")
    ip.route_del("fc00:2::/64 table 100")
    assert ip.node.table(100).lookup(pton("fc00:2::5")) is None


def test_route_del_missing_route_raises(ip):
    with pytest.raises(IpRouteError, match="no route"):
        ip.route_del("fc00:9::/64")


def test_route_replace_overwrites_nexthop(ip):
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    route = ip.route_replace("fc00:2::/64 via fc00:2::9 dev eth0")
    assert route.nexthops[0].via == pton("fc00:2::9")
    resolved = ip.node.main_table().lookup(pton("fc00:2::5"))
    assert resolved.nexthops[0].dev == "eth0"


def test_route_show_round_trips_plain_and_encap_routes(ip):
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    ip.route_add("fc00:3::/64 encap seg6 mode encap segs fc00::a,fc00::b dev eth1")
    ip.route_add("fc00::100/128 encap seg6local action End.DT6 table 254")
    ip.route_add(
        "fc00::101/128 encap seg6local action End.BPF endpoint obj prog.o dev eth0"
    )
    ip.route_add(
        "fc00:5::/64 nexthop via fc00::a dev eth0 weight 2 nexthop via fc00::b dev eth1"
    )
    shown = ip.route_show()
    assert shown  # deterministic order: sorted by (prefixlen, prefix)

    # Replay every shown line onto a fresh node: same routes come back.
    replica = IpRoute(Node("R2"), objects=ip.objects)
    replica.node.add_device("eth0")
    replica.node.add_device("eth1")
    for line in shown:
        replica.route_add(line)
    assert replica.route_show() == shown


def test_route_show_includes_table_and_local(ip):
    ip.addr_add("fc00:e::1 dev eth0")
    ip.route_add("fc00:2::/64 table 100 via fc00:2::1 dev eth1")
    assert any(line.startswith("local fc00:e::1/128") for line in ip.route_show())
    assert ip.route_show("table 100") == ["fc00:2::/64 via fc00:2::1 dev eth1 table 100"]


def test_execute_dispatches_full_command_lines(ip):
    ip.execute("ip -6 addr add fc00:e::1 dev eth0")
    assert pton("fc00:e::1") in ip.node.addresses
    ip.execute("ip -6 route add fc00:2::/64 via fc00:2::1 dev eth1")
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is not None
    ip.execute("route replace fc00:2::/64 via fc00:2::9 dev eth0")
    shown = ip.execute("ip -6 route show")
    assert "fc00:2::/64 via fc00:2::9 dev eth0" in shown
    ip.execute("ip -6 route del fc00:2::/64")
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is None


def test_execute_rejects_unknown_commands(ip):
    with pytest.raises(IpRouteError, match="unknown route subcommand"):
        ip.execute("ip -6 route frobnicate fc00::/64")
    with pytest.raises(IpRouteError, match="unknown command object"):
        ip.execute("ip -6 link set eth0 up")


def test_shared_object_registry_sees_late_loads():
    node = Node("R")
    node.add_device("eth0")
    objects = {}
    ip = IpRoute(node, objects)
    with pytest.raises(IpRouteError, match="no loaded eBPF object"):
        ip.route_add(
            "fc00::100/128 encap seg6local action End.BPF endpoint obj late.o dev eth0"
        )
    objects["late.o"] = Program("mov r0, 0\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    route = ip.route_add(
        "fc00::100/128 encap seg6local action End.BPF endpoint obj late.o dev eth0"
    )
    assert isinstance(route.encap, EndBPF)


# --- round-tripping under churn (the control plane's write pattern) -----------


def replay_equals_shown(ip):
    """Replay the current dump onto a fresh node; both dumps must match."""
    shown = ip.route_show()
    replica = IpRoute(Node("replica"), objects=ip.objects)
    replica.node.add_device("eth0")
    replica.node.add_device("eth1")
    for line in shown:
        replica.route_add(line)
    assert replica.route_show() == shown
    return shown


CHURN = [
    "route add fc00:2::/64 via fc00:2::1 dev eth1",
    "route add fc00:5::/64 nexthop via fc00::a dev eth0 weight 2 "
    "nexthop via fc00::b dev eth1 weight 1",
    "route add fc00:3::/64 encap seg6 mode encap segs fc00::a,fc00::b dev eth1",
    "route replace fc00:5::/64 nexthop via fc00::a dev eth0 weight 1 "
    "nexthop via fc00::c dev eth1 weight 1",
    "route replace fc00:2::/64 encap seg6 mode encap segs fcff:1::d",
    "route del fc00:3::/64",
    "route add fc00:3::/64 encap seg6 mode inline segs fc00::c dev eth1",
    "route replace fc00:3::/64 via fc00:3::9 dev eth0",
    "route del fc00:5::/64",
    "route add fc00:5::/64 encap seg6 mode encap segs fc00::d "
    "nexthop via fc00::a dev eth0 nexthop via fc00::b dev eth1",
    "route replace fc00:2::/64 via fc00:2::1 dev eth1",
    "route del fc00:2::/64",
]


def test_churn_round_trips_after_every_step(ip):
    """ECMP and seg6-encap replace/del interleaved: the dump re-parses to
    identical state after *every* mutation — the property the IGP's
    route programming relies on."""
    for command in CHURN:
        ip.execute(command)
        replay_equals_shown(ip)


def test_churn_end_state_is_exact(ip):
    for command in CHURN:
        ip.execute(command)
    shown = replay_equals_shown(ip)
    assert "fc00:2::/64" not in " ".join(shown)
    assert any(
        line.startswith("fc00:5::/64 encap seg6") and line.count("nexthop") == 2
        for line in shown
    )


def test_replace_churn_bumps_generation_for_flow_table(ip):
    """Every replace/del invalidates memoised lookups (generation bump)."""
    table = ip.node.main_table()
    generation = table.generation
    ip.execute("route add fc00:2::/64 via fc00:2::1 dev eth1")
    ip.execute("route replace fc00:2::/64 via fc00:2::9 dev eth0")
    ip.execute("route del fc00:2::/64")
    assert table.generation == generation + 3


def test_route_del_accepts_metric_selector(ip):
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1 metric 1024")
    ip.route_del("fc00:2::/64 metric 1024")
    assert ip.node.main_table().lookup(pton("fc00:2::5")) is None


def test_route_show_registers_programmatic_programs_for_replay(ip):
    # Installed around the plane (node.add_route with an encap object),
    # as usecases' install_wrr does — the dump must still resolve.
    prog = Program("mov r0, 0\nexit", allowed_helpers=SEG6LOCAL_HELPERS, name="wrr")
    ip.node.add_route("fc00:7::/64", encap=BpfLwt(prog_out=prog), via="fc00::1", dev="eth0")
    shown = [line for line in ip.route_show() if "encap bpf" in line]
    assert shown == ["fc00:7::/64 encap bpf out obj wrr via fc00::1 dev eth0"]
    assert ip.objects["wrr"] is prog  # registered on show
    replica = IpRoute(Node("R2"), objects=ip.objects)
    replica.node.add_device("eth0")
    replayed = replica.route_add(shown[0])
    assert replayed.encap.prog_out is prog


def test_route_show_local_lines_replay_unfiltered(ip):
    ip.addr_add("fc00:e::1 dev eth0")
    ip.route_add("fc00:2::/64 via fc00:2::1 dev eth1")
    shown = ip.route_show()
    replica = IpRoute(Node("R2"))
    replica.node.add_device("eth0")
    replica.node.add_device("eth1")
    for line in shown:
        replica.route_add(line)  # no filtering needed
    assert replica.route_show() == shown
    # The replayed local route really delivers locally.
    resolved = replica.node.main_table().lookup(pton("fc00:e::1"))
    assert resolved is not None and resolved.local
