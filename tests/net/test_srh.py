"""Segment Routing Header: wire format, semantics, TLVs."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    SRH,
    Tlv,
    make_controller_tlv,
    make_dm_tlv,
    make_srh,
    pton,
    validate_srh_bytes,
)
from repro.net.srh import (
    TLV_CONTROLLER,
    TLV_DM,
    TLV_PAD1,
    TLV_PADN,
    pad_tlvs,
    parse_tlvs,
)


def test_make_srh_path_order():
    srh = make_srh(["fc00::a", "fc00::b", "fc00::c"], next_header=17)
    # Reverse storage: segments[0] is the final hop.
    assert srh.segments[0] == pton("fc00::c")
    assert srh.segments[2] == pton("fc00::a")
    assert srh.segments_left == 2
    assert srh.current_segment == pton("fc00::a")


def test_pack_parse_roundtrip():
    srh = make_srh(["fc00::a", "fc00::b"], next_header=41, tag=7, flags=1)
    parsed = SRH.parse(srh.pack())
    assert parsed.segments == srh.segments
    assert parsed.segments_left == srh.segments_left
    assert parsed.tag == 7
    assert parsed.flags == 1
    assert parsed.next_header == 41


def test_hdr_ext_len_encoding():
    srh = make_srh(["fc00::a", "fc00::b"], next_header=59)
    assert srh.wire_len == 8 + 32
    assert srh.hdr_ext_len == 4
    assert srh.pack()[1] == 4


def test_advance_semantics():
    srh = make_srh(["fc00::a", "fc00::b"], next_header=59)
    assert srh.advance() == pton("fc00::b")
    assert srh.segments_left == 0
    with pytest.raises(ValueError, match="cannot advance"):
        srh.advance()


def test_first_final_properties():
    srh = make_srh(["fc00::a", "fc00::b", "fc00::c"], next_header=59)
    assert srh.first_segment == pton("fc00::a")
    assert srh.final_segment == pton("fc00::c")


def test_empty_segment_list_rejected():
    with pytest.raises(ValueError):
        SRH(segments=[], segments_left=0)


def test_segments_left_bounds():
    with pytest.raises(ValueError):
        SRH(segments=[pton("fc00::1")], segments_left=1)


def test_length_must_be_multiple_of_8():
    with pytest.raises(ValueError, match="multiple of 8"):
        SRH(segments=[pton("fc00::1")], segments_left=0, tlv_bytes=b"\x00" * 5)


def test_parse_rejects_wrong_routing_type():
    raw = bytearray(make_srh(["fc00::a"], next_header=59).pack())
    raw[2] = 3  # not an SRH
    with pytest.raises(ValueError, match="routing type"):
        SRH.parse(bytes(raw))


def test_parse_rejects_truncated():
    raw = make_srh(["fc00::a"], next_header=59).pack()
    with pytest.raises(ValueError):
        SRH.parse(raw[:10])


def test_parse_rejects_segment_list_overflow():
    raw = bytearray(make_srh(["fc00::a"], next_header=59).pack())
    raw[4] = 5  # last_entry claims 6 segments in a 24-byte SRH
    with pytest.raises(ValueError, match="exceeds"):
        SRH.parse(bytes(raw))


# --- TLVs ------------------------------------------------------------------------


def test_tlv_pack():
    assert Tlv(10, b"abc").pack() == b"\x0a\x03abc"
    assert Tlv(TLV_PAD1).pack() == b"\x00"


def test_parse_tlvs_mixed():
    raw = Tlv(10, b"ab").pack() + b"\x00" + Tlv(TLV_PADN, b"\x00\x00").pack()
    tlvs = parse_tlvs(raw)
    assert [t.tlv_type for t in tlvs] == [10, TLV_PAD1, TLV_PADN]


def test_parse_tlvs_rejects_truncation():
    with pytest.raises(ValueError):
        parse_tlvs(b"\x0a\x05ab")  # claims 5 bytes, has 2


def test_pad_tlvs_aligns_to_8():
    tlvs = [Tlv(10, b"abc")]  # 5 bytes
    padded = pad_tlvs(tlvs, occupied=8 + 16)
    total = sum(t.wire_len for t in padded)
    assert (8 + 16 + total) % 8 == 0


def test_pad_tlvs_single_byte_uses_pad1():
    padded = pad_tlvs([Tlv(10, b"abcde")], occupied=24)  # 7 bytes of TLV
    assert padded[-1].tlv_type == TLV_PAD1


def test_srh_with_tlvs_roundtrip():
    tlvs = [make_dm_tlv(123456789), make_controller_tlv("fc00::c", 9999)]
    srh = make_srh(["fc00::a", "fc00::b"], next_header=41, tlvs=tlvs)
    parsed = SRH.parse(srh.pack())
    dm = parsed.find_tlv(TLV_DM)
    assert dm is not None
    assert int.from_bytes(dm.value[:8], "big") == 123456789
    ctrl = parsed.find_tlv(TLV_CONTROLLER)
    assert ctrl.value[:16] == pton("fc00::c")
    assert int.from_bytes(ctrl.value[16:18], "big") == 9999


def test_tlv_offset_location():
    tlvs = [make_dm_tlv(1)]
    srh = make_srh(["fc00::a", "fc00::b"], next_header=41, tlvs=tlvs)
    offset = srh.tlv_offset(TLV_DM)
    assert offset == 8 + 32  # right after the segment list
    assert srh.pack()[offset] == TLV_DM


def test_find_tlv_missing_returns_none():
    srh = make_srh(["fc00::a"], next_header=59)
    assert srh.find_tlv(TLV_DM) is None


def test_validate_srh_bytes_rejects_bad_tlv_area():
    srh = make_srh(["fc00::a"], next_header=59, tlvs=[Tlv(10, b"abcdef")])
    raw = bytearray(srh.pack())
    raw[8 + 16 + 1] = 200  # corrupt the TLV length
    with pytest.raises(ValueError):
        validate_srh_bytes(bytes(raw))


def test_validate_srh_bytes_accepts_valid():
    srh = make_srh(["fc00::a", "fc00::b"], next_header=41)
    assert validate_srh_bytes(srh.pack()).segments_left == 1


@given(
    n_segments=st.integers(1, 6),
    tag=st.integers(0, 0xFFFF),
    flags=st.integers(0, 255),
    next_header=st.sampled_from([17, 41, 59, 6]),
    tlv_payload=st.binary(max_size=40),
)
def test_srh_roundtrip_property(n_segments, tag, flags, next_header, tlv_payload):
    path = [pton(f"fc00::{i + 1}") for i in range(n_segments)]
    tlvs = [Tlv(10, tlv_payload)] if tlv_payload else []
    srh = make_srh(path, next_header=next_header, tlvs=tlvs, tag=tag, flags=flags)
    parsed = SRH.parse(srh.pack())
    assert parsed.pack() == srh.pack()
    assert parsed.current_segment == path[0]
    assert parsed.final_segment == path[-1]
