"""Wire formats: addresses, checksums, IPv6, UDP, TCP, ICMPv6."""

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    IPv6Header,
    Icmpv6Message,
    PROTO_UDP,
    TcpHeader,
    UdpHeader,
    build_tcp,
    build_udp,
    echo_reply,
    echo_request,
    ntop,
    parse_prefix,
    pton,
    time_exceeded,
)
from repro.net.checksum import l4_checksum, ones_complement_sum, verify_l4
from repro.net.icmpv6 import MAX_ERROR_PAYLOAD, build_icmpv6


# --- addresses -------------------------------------------------------------


def test_pton_ntop_roundtrip():
    assert ntop(pton("fc00::1")) == "fc00::1"
    assert ntop(pton("2001:db8:0:0:0:0:0:1")) == "2001:db8::1"


def test_pton_length():
    assert len(pton("::")) == 16


def test_ntop_rejects_wrong_length():
    with pytest.raises(ValueError):
        ntop(b"\x00" * 4)


def test_parse_prefix():
    prefix, length = parse_prefix("fc00:1::/64")
    assert length == 64
    assert prefix == pton("fc00:1::")


def test_parse_prefix_normalises_host_bits():
    prefix, length = parse_prefix("fc00:1::42/64")
    assert prefix == pton("fc00:1::")


# --- checksum -----------------------------------------------------------------


def _reference_sum(data: bytes) -> int:
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


@given(data=st.binary(max_size=200))
def test_fast_checksum_matches_reference(data):
    assert ones_complement_sum(data) == _reference_sum(data)


@given(payload=st.binary(max_size=100))
def test_udp_checksum_verifies(payload):
    src, dst = pton("fc00::1"), pton("fc00::2")
    datagram = build_udp(src, dst, 1111, 2222, payload)
    assert verify_l4(src, dst, PROTO_UDP, datagram)


def test_udp_zero_checksum_becomes_ffff():
    # RFC 8200: UDP over IPv6 must never carry checksum 0.
    src, dst = pton("fc00::1"), pton("fc00::2")
    for port in range(200):
        datagram = build_udp(src, dst, port, port, bytes(2))
        header = UdpHeader.parse(datagram)
        assert header.checksum != 0


def test_corrupted_payload_fails_verification():
    src, dst = pton("fc00::1"), pton("fc00::2")
    datagram = bytearray(build_udp(src, dst, 1111, 2222, b"hello"))
    datagram[-1] ^= 0xFF
    assert not verify_l4(src, dst, PROTO_UDP, bytes(datagram))


def test_l4_checksum_depends_on_pseudo_header():
    payload = b"\x00" * 8
    a = l4_checksum(pton("fc00::1"), pton("fc00::2"), 17, payload)
    b = l4_checksum(pton("fc00::1"), pton("fc00::3"), 17, payload)
    assert a != b


# --- IPv6 header -------------------------------------------------------------------


def test_ipv6_pack_parse_roundtrip():
    header = IPv6Header(
        src="fc00::1",
        dst="fc00::2",
        next_header=17,
        payload_length=100,
        hop_limit=33,
        traffic_class=0x12,
        flow_label=0xABCDE,
    )
    parsed = IPv6Header.parse(header.pack())
    assert parsed == header


def test_ipv6_header_is_40_bytes():
    assert len(IPv6Header(src="::", dst="::").pack()) == 40


def test_ipv6_rejects_short_buffer():
    with pytest.raises(ValueError, match="short"):
        IPv6Header.parse(b"\x60" + b"\x00" * 10)


def test_ipv6_rejects_wrong_version():
    raw = bytearray(IPv6Header(src="::", dst="::").pack())
    raw[0] = 0x40
    with pytest.raises(ValueError, match="version"):
        IPv6Header.parse(bytes(raw))


def test_flow_label_bounds():
    with pytest.raises(ValueError):
        IPv6Header(src="::", dst="::", flow_label=1 << 20)


@given(
    hop=st.integers(0, 255),
    label=st.integers(0, (1 << 20) - 1),
    tclass=st.integers(0, 255),
    plen=st.integers(0, 0xFFFF),
)
def test_ipv6_roundtrip_property(hop, label, tclass, plen):
    header = IPv6Header(
        src="fc00::1",
        dst="fc00::2",
        hop_limit=hop,
        flow_label=label,
        traffic_class=tclass,
        payload_length=plen,
    )
    assert IPv6Header.parse(header.pack()) == header


# --- TCP ---------------------------------------------------------------------------


def test_tcp_pack_parse_roundtrip():
    header = TcpHeader(src_port=80, dst_port=443, seq=12345, ack=999, flags=0x10)
    parsed = TcpHeader.parse(build_tcp(pton("fc00::1"), pton("fc00::2"), header))
    assert (parsed.src_port, parsed.dst_port) == (80, 443)
    assert parsed.seq == 12345
    assert parsed.ack == 999


def test_tcp_checksum_valid():
    src, dst = pton("fc00::1"), pton("fc00::2")
    segment = build_tcp(src, dst, TcpHeader(1, 2, 0, 0), b"data")
    assert verify_l4(src, dst, 6, segment)


def test_tcp_flag_names():
    header = TcpHeader(1, 2, 0, 0, flags=0x12)
    assert header.flag_names() == "SYN|ACK"


def test_tcp_seq_wraps_in_wire_format():
    header = TcpHeader(1, 2, seq=1 << 33, ack=0)
    parsed = TcpHeader.parse(header.pack())
    assert parsed.seq == (1 << 33) % (1 << 32)


# --- ICMPv6 --------------------------------------------------------------------------


def test_icmp_roundtrip():
    message = echo_request(7, 3, b"ping")
    raw = build_icmpv6(pton("fc00::1"), pton("fc00::2"), message)
    parsed = Icmpv6Message.parse(raw)
    assert parsed.msg_type == 128
    assert parsed.body[4:] == b"ping"


def test_echo_reply_mirrors_body():
    request = echo_request(7, 3, b"data")
    reply = echo_reply(request)
    assert reply.msg_type == 129
    assert reply.body == request.body


def test_time_exceeded_quotes_offender():
    offender = bytes(range(64))
    message = time_exceeded(offender)
    assert message.msg_type == 3
    assert message.body[4:] == offender


def test_time_exceeded_truncates_large_packets():
    offender = bytes(2000)
    message = time_exceeded(offender)
    assert len(message.body) == 4 + MAX_ERROR_PAYLOAD


def test_error_vs_info_classification():
    assert time_exceeded(b"").is_error
    assert not echo_request(1, 1).is_error
