"""seg6 transit behaviours and static seg6local actions."""

import pytest

from repro.net import (
    End,
    EndB6,
    EndB6Encaps,
    EndDT6,
    EndDX6,
    EndT,
    EndX,
    Node,
    Packet,
    SRH,
    Seg6Encap,
    decap_outer,
    make_srh,
    make_srv6_udp_packet,
    make_udp_packet,
    pop_srh,
    pton,
    push_outer_encap,
    push_srh_inline,
)


def plain_packet() -> bytes:
    return bytes(make_udp_packet("fc00::1", "fc00:2::2", 1111, 2222, b"hello").data)


# --- byte-level transforms ----------------------------------------------------


def test_push_outer_encap_structure():
    srh = make_srh(["fc00::a", "fc00::b"], next_header=41)
    out = push_outer_encap(plain_packet(), pton("fc00::9"), srh)
    pkt = Packet(out)
    assert pkt.src == pton("fc00::9")
    assert pkt.dst == pton("fc00::a")  # first segment
    assert pkt.next_header == 43
    parsed, _ = pkt.srh()
    assert parsed.next_header == 41
    assert pkt.ipv6().payload_length == srh.wire_len + len(plain_packet())


def test_encap_decap_roundtrip():
    srh = make_srh(["fc00::a"], next_header=41)
    out = push_outer_encap(plain_packet(), pton("fc00::9"), srh)
    assert decap_outer(out) == plain_packet()


def test_push_inline_structure():
    original = plain_packet()
    srh = make_srh(["fc00::a", "fc00:2::2"], next_header=17)
    out = push_srh_inline(original, srh)
    pkt = Packet(out)
    assert pkt.dst == pton("fc00::a")
    assert pkt.next_header == 43
    assert pkt.l4() == (17, 1111, 2222)
    assert pkt.ipv6().payload_length == len(original) - 40 + srh.wire_len


def test_inline_pop_roundtrip():
    original = plain_packet()
    srh = make_srh(["fc00::a", "fc00:2::2"], next_header=17)
    inserted = push_srh_inline(original, srh)
    popped = pop_srh(inserted)
    # Destination was rewritten to the first segment by insertion; the
    # payload and structure must otherwise be intact.
    restored = Packet(popped)
    assert restored.udp_payload() == b"hello"
    assert restored.next_header == 17


def test_pop_srh_requires_srh():
    with pytest.raises(ValueError):
        pop_srh(plain_packet())


def test_decap_requires_inner_ipv6():
    with pytest.raises(ValueError):
        decap_outer(plain_packet())


# --- Seg6Encap lwtunnel -------------------------------------------------------------


def test_seg6encap_encap_mode():
    encap = Seg6Encap(segments=[pton("fc00::a"), pton("fc00::b")], mode="encap")
    out = encap.apply(plain_packet(), pton("fc00::9"))
    pkt = Packet(out)
    assert pkt.dst == pton("fc00::a")
    srh, _ = pkt.srh()
    assert srh.segments_left == 1
    assert srh.final_segment == pton("fc00::b")


def test_seg6encap_inline_appends_original_dst():
    encap = Seg6Encap(segments=[pton("fc00::a")], mode="inline")
    out = encap.apply(plain_packet(), pton("fc00::9"))
    srh, _ = Packet(out).srh()
    assert srh.final_segment == pton("fc00:2::2")
    assert srh.segments_left == 1


def test_seg6encap_validates_mode():
    with pytest.raises(ValueError):
        Seg6Encap(segments=[pton("fc00::a")], mode="bogus")
    with pytest.raises(ValueError):
        Seg6Encap(segments=[], mode="encap")


# --- static seg6local actions ---------------------------------------------------------


def srv6_packet(path, **kwargs) -> Packet:
    return make_srv6_udp_packet("fc00::1", path, 1111, 2222, b"x", **kwargs)


@pytest.fixture
def node():
    n = Node("N")
    n.add_address("fc00:e::1")
    return n


def test_end_advances(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    disposition = End().process(pkt, node)
    assert disposition.action == "forward"
    assert pkt.dst == pton("fc00:2::2")
    srh, _ = pkt.srh()
    assert srh.segments_left == 0


def test_end_requires_srh(node):
    pkt = Packet(plain_packet())
    assert End().process(pkt, node).action == "drop"


def test_end_rejects_exhausted_segments(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    End().process(pkt, node)
    assert End().process(pkt, node).action == "drop"  # segments_left now 0


def test_end_x_forces_nexthop(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    disposition = EndX(nh6="fc00::55").process(pkt, node)
    assert disposition.nh6 == pton("fc00::55")
    assert pkt.dst == pton("fc00:2::2")


def test_end_t_selects_table(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    disposition = EndT(table_id=100).process(pkt, node)
    assert disposition.table_id == 100


def test_end_dt6_decapsulates(node):
    inner = plain_packet()
    srh = make_srh(["fc00:e::100"], next_header=41)
    outer = push_outer_encap(inner, pton("fc00::9"), srh)
    pkt = Packet(outer)
    disposition = EndDT6(table_id=254).process(pkt, node)
    assert disposition.action == "forward"
    assert bytes(pkt.data) == inner


def test_end_dt6_rejects_pending_segments(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])  # segments_left == 1
    assert EndDT6(table_id=254).process(pkt, node).action == "drop"


def test_end_dx6_decapsulates_to_nexthop(node):
    inner = plain_packet()
    srh = make_srh(["fc00:e::100"], next_header=41)
    pkt = Packet(push_outer_encap(inner, pton("fc00::9"), srh))
    disposition = EndDX6(nh6="fc00::66").process(pkt, node)
    assert disposition.nh6 == pton("fc00::66")
    assert bytes(pkt.data) == inner


def test_end_b6_inserts_policy_without_advance(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    EndB6(segments=["fc00::b1", "fc00::b2"]).process(pkt, node)
    srh, _ = pkt.srh()
    # New policy SRH on top: first segment of the policy is now the DA.
    assert pkt.dst == pton("fc00::b1")
    assert srh.final_segment == pton("fc00:e::100")


def test_end_b6_encaps_advances_then_wraps(node):
    pkt = srv6_packet(["fc00:e::100", "fc00:2::2"])
    EndB6Encaps(segments=["fc00::b1"], source="fc00:e::1").process(pkt, node)
    outer = Packet(bytes(pkt.data))
    assert outer.dst == pton("fc00::b1")
    assert outer.src == pton("fc00:e::1")
    inner = decap_outer(bytes(pkt.data))
    assert Packet(inner).dst == pton("fc00:2::2")  # advanced before encap
