"""HMAC TLV extension (RFC 8754 §2.1.2)."""

import pytest

from repro.net import SRH, make_srh, pton
from repro.net.hmac_tlv import (
    HmacKeyStore,
    compute_hmac,
    make_hmac_tlv,
    verify_hmac,
)

SECRET = b"super-secret-key"
SRC = "fc00:1::1"


def signed_srh(key_id=7, secret=SECRET, path=None):
    base = make_srh(path or ["fc00::a", "fc00::b"], next_header=41)
    tlv = make_hmac_tlv(SRC, base, key_id, secret)
    return make_srh(path or ["fc00::a", "fc00::b"], next_header=41, tlvs=[tlv])


def keystore(key_id=7, secret=SECRET):
    keys = HmacKeyStore()
    keys.add_key(key_id, secret)
    return keys


def test_sign_and_verify_roundtrip():
    srh = signed_srh()
    assert verify_hmac(SRC, srh, keystore())


def test_verify_survives_wire_roundtrip():
    srh = SRH.parse(signed_srh().pack())
    assert verify_hmac(SRC, srh, keystore())


def test_wrong_source_rejected():
    srh = signed_srh()
    assert not verify_hmac("fc00:1::2", srh, keystore())


def test_wrong_secret_rejected():
    srh = signed_srh()
    assert not verify_hmac(SRC, srh, keystore(secret=b"other"))


def test_unknown_key_id_rejected():
    srh = signed_srh(key_id=7)
    assert not verify_hmac(SRC, srh, keystore(key_id=8))


def test_missing_tlv_rejected():
    srh = make_srh(["fc00::a"], next_header=41)
    assert not verify_hmac(SRC, srh, keystore())


def test_tampered_segment_list_rejected():
    srh = signed_srh()
    srh.segments[0] = pton("fc00::ef")
    assert not verify_hmac(SRC, srh, keystore())


def test_hmac_does_not_cover_segments_left():
    """Per the RFC, segments_left changes at every hop, so advancing the
    SRH must not break the HMAC."""
    srh = signed_srh()
    srh.advance()
    assert verify_hmac(SRC, srh, keystore())


def test_digest_depends_on_key_id():
    base = make_srh(["fc00::a"], next_header=41)
    assert compute_hmac(SRC, base, 1, SECRET) != compute_hmac(SRC, base, 2, SECRET)


def test_keystore_validation():
    keys = HmacKeyStore()
    with pytest.raises(ValueError):
        keys.add_key(0, SECRET)
    with pytest.raises(ValueError):
        keys.add_key(1, b"")
