"""Packet metadata/parsing and the FIB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    FibTable,
    Nexthop,
    Packet,
    Route,
    make_srv6_udp_packet,
    make_tcp_packet,
    make_udp_packet,
    parse_prefix,
    pton,
)
from repro.net.tcp import TcpHeader


# --- packet ---------------------------------------------------------------------


def test_udp_packet_fields():
    pkt = make_udp_packet("fc00::1", "fc00::2", 1111, 2222, b"hello")
    assert pkt.src == pton("fc00::1")
    assert pkt.dst == pton("fc00::2")
    assert pkt.next_header == 17
    assert pkt.l4() == (17, 1111, 2222)
    assert pkt.udp_payload() == b"hello"


def test_srv6_packet_l4_walks_routing_header():
    pkt = make_srv6_udp_packet("fc00::1", ["fc00::a", "fc00::b"], 1111, 2222, b"x")
    assert pkt.next_header == 43
    assert pkt.l4() == (17, 1111, 2222)
    assert pkt.dst == pton("fc00::a")


def test_l4_walks_encapsulation():
    from repro.net import make_srh, push_outer_encap

    inner = make_udp_packet("fc00::1", "fc00::2", 5, 6, b"p")
    srh = make_srh(["fc00::e"], next_header=41)
    outer = push_outer_encap(bytes(inner.data), pton("fc00::9"), srh)
    pkt = Packet(outer)
    assert pkt.l4() == (17, 5, 6)
    assert pkt.udp_payload() == b"p"


def test_tcp_packet_l4():
    pkt = make_tcp_packet("fc00::1", "fc00::2", TcpHeader(80, 443, 0, 0))
    assert pkt.l4() == (6, 80, 443)


def test_hop_limit_ops():
    pkt = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"", hop_limit=2)
    assert pkt.decrement_hop_limit() == 1
    assert pkt.decrement_hop_limit() == 0
    assert pkt.decrement_hop_limit() == 0  # saturates


def test_set_dst_rewrites_wire_bytes():
    pkt = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"")
    pkt.set_dst(pton("fc00::42"))
    assert pkt.ipv6().dst == pton("fc00::42")


def test_flow_hash_stable_and_flow_sensitive():
    p1 = make_udp_packet("fc00::1", "fc00::2", 1111, 2222, b"a")
    p2 = make_udp_packet("fc00::1", "fc00::2", 1111, 2222, b"bb")
    p3 = make_udp_packet("fc00::1", "fc00::2", 1112, 2222, b"a")
    assert p1.flow_hash() == p2.flow_hash()  # same 5-tuple
    assert p1.flow_hash() != p3.flow_hash()  # different source port


def test_packet_copy_is_independent():
    p1 = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"")
    p2 = p1.copy()
    p2.set_dst(pton("fc00::3"))
    assert p1.dst == pton("fc00::2")


def test_srh_accessor():
    pkt = make_srv6_udp_packet("fc00::1", ["fc00::a", "fc00::b"], 1, 2, b"", tag=5)
    srh, offset = pkt.srh()
    assert offset == 40
    assert srh.tag == 5
    plain = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"")
    assert plain.srh() is None


def test_unknown_packet_fields_rejected():
    with pytest.raises(TypeError):
        Packet(b"\x60" + b"\x00" * 39, bogus=1)


# --- FIB --------------------------------------------------------------------------


def route(prefix: str, **kwargs) -> Route:
    network, prefixlen = parse_prefix(prefix)
    return Route(prefix=network, prefixlen=prefixlen, **kwargs)


def test_longest_prefix_match():
    table = FibTable()
    table.add(route("fc00::/16", nexthops=[Nexthop(dev="a")]))
    table.add(route("fc00:1::/64", nexthops=[Nexthop(dev="b")]))
    assert table.lookup(pton("fc00:1::9")).nexthops[0].dev == "b"
    assert table.lookup(pton("fc00:2::9")).nexthops[0].dev == "a"


def test_default_route():
    table = FibTable()
    table.add(route("::/0", nexthops=[Nexthop(dev="x")]))
    assert table.lookup(pton("2001:db8::1")).nexthops[0].dev == "x"


def test_no_route_returns_none():
    table = FibTable()
    table.add(route("fc00::/64", nexthops=[Nexthop(dev="a")]))
    assert table.lookup(pton("fd00::1")) is None


def test_host_route_beats_prefix():
    table = FibTable()
    table.add(route("fc00::/16", nexthops=[Nexthop(dev="a")]))
    table.add(route("fc00::5/128", nexthops=[Nexthop(dev="h")]))
    assert table.lookup(pton("fc00::5")).nexthops[0].dev == "h"


def test_remove_route():
    table = FibTable()
    table.add(route("fc00::/64", nexthops=[Nexthop(dev="a")]))
    table.remove(pton("fc00::"), 64)
    assert table.lookup(pton("fc00::1")) is None
    with pytest.raises(KeyError):
        table.remove(pton("fc00::"), 64)


def test_add_same_prefix_overwrites():
    table = FibTable()
    table.add(route("fc00::/64", nexthops=[Nexthop(dev="a")]))
    table.add(route("fc00::/64", nexthops=[Nexthop(dev="b")]))
    assert len(table) == 1
    assert table.lookup(pton("fc00::1")).nexthops[0].dev == "b"


def test_ecmp_nexthop_selection_by_hash():
    r = route(
        "fc00::/64",
        nexthops=[Nexthop(via="fc00::a", dev="a"), Nexthop(via="fc00::b", dev="b")],
    )
    assert r.select_nexthop(0).dev == "a"
    assert r.select_nexthop(1).dev == "b"


def test_ecmp_weighted_selection():
    r = route(
        "fc00::/64",
        nexthops=[
            Nexthop(via="fc00::a", dev="a", weight=3),
            Nexthop(via="fc00::b", dev="b", weight=1),
        ],
    )
    picks = [r.select_nexthop(h).dev for h in range(4)]
    assert picks.count("a") == 3
    assert picks.count("b") == 1


def test_ecmp_flows_spread_roughly_evenly():
    table = FibTable()
    table.add(
        route(
            "fc00:2::/64",
            nexthops=[Nexthop(via="fc00::a", dev="a"), Nexthop(via="fc00::b", dev="b")],
        )
    )
    counts = {"a": 0, "b": 0}
    for port in range(400):
        pkt = make_udp_packet("fc00::1", "fc00:2::9", 1000 + port, 80, b"")
        r = table.lookup(pkt.dst)
        counts[r.select_nexthop(pkt.flow_hash()).dev] += 1
    assert counts["a"] > 100
    assert counts["b"] > 100


def test_ecmp_nexthops_query():
    table = FibTable()
    table.add(
        route(
            "fc00:2::/64",
            nexthops=[Nexthop(via="fc00::a", dev="a"), Nexthop(via="fc00::b", dev="b")],
        )
    )
    nhs = table.ecmp_nexthops(pton("fc00:2::1"))
    assert [nh.via for nh in nhs] == [pton("fc00::a"), pton("fc00::b")]
    assert table.ecmp_nexthops(pton("fd00::1")) == []


def test_nexthop_requires_gateway_or_device():
    with pytest.raises(ValueError):
        Nexthop()


@settings(max_examples=50, deadline=None)
@given(
    prefixes=st.lists(st.integers(0, 64), min_size=1, max_size=10),
    query_low=st.integers(0, (1 << 64) - 1),
)
def test_fib_lpm_matches_reference(prefixes, query_low):
    """FIB longest-prefix-match agrees with a brute-force reference."""
    base = pton("fc00::")
    table = FibTable()
    entries = []
    for i, plen in enumerate(sorted(set(prefixes))):
        r = Route(prefix=base, prefixlen=plen, nexthops=[Nexthop(dev=f"d{plen}")])
        table.add(r)
        entries.append(plen)
    query = bytes(8) + query_low.to_bytes(8, "big")
    query = bytes([0xFC, 0x00]) + query[2:]
    hit = table.lookup(query)

    def matches(plen):
        from repro.net.addr import matches_prefix

        return matches_prefix(query, base, plen)

    expected = max((p for p in entries if matches(p)), default=None)
    if expected is None:
        assert hit is None
    else:
        assert hit.nexthops[0].dev == f"d{expected}"
