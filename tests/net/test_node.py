"""Node datapath: forwarding, ICMP generation, local delivery, LWT wiring."""

import pytest

from repro.ebpf import Program
from repro.net import (
    BpfLwt,
    End,
    EndBPF,
    EndDT6,
    Icmpv6Message,
    LWT_HELPERS,
    Nexthop,
    Node,
    SEG6LOCAL_HELPERS,
    Seg6Encap,
    echo_request,
    make_icmpv6_packet,
    make_srv6_udp_packet,
    make_udp_packet,
    pton,
)


@pytest.fixture
def router():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00:e::1")
    node.add_route("fc00:1::/64", via="fc00:1::1", dev="eth0")
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1")
    return node


def test_plain_forwarding(router):
    pkt = make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x", hop_limit=10)
    router.receive(pkt, router.devices["eth0"])
    out = router.devices["eth1"].tx_buffer
    assert len(out) == 1
    assert out[0].hop_limit == 9
    assert router.counters.forwarded == 1


def test_no_route_drops(router):
    pkt = make_udp_packet("fc00:1::1", "fd00::1", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.no_route == 1
    assert not router.devices["eth1"].tx_buffer


def test_hop_limit_expiry_generates_time_exceeded(router):
    pkt = make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x", hop_limit=1)
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.hop_limit_exceeded == 1
    assert not router.devices["eth1"].tx_buffer
    # The ICMPv6 error went back toward the source.
    back = router.devices["eth0"].tx_buffer
    assert len(back) == 1
    assert back[0].l4()[0] == 58
    info = back[0]._l4_offset()
    message = Icmpv6Message.parse(bytes(back[0].data), info[1])
    assert message.msg_type == 3


def test_local_delivery_to_bound_listener(router):
    seen = []
    router.bind(lambda pkt, node: seen.append(pkt), proto=17, port=7777)
    pkt = make_udp_packet("fc00:1::1", "fc00:e::1", 1, 7777, b"hi")
    router.receive(pkt, router.devices["eth0"])
    assert len(seen) == 1
    assert router.counters.delivered_local == 1


def test_local_udp_without_listener_sends_port_unreachable(router):
    pkt = make_udp_packet("fc00:1::1", "fc00:e::1", 1, 9999, b"hi")
    router.receive(pkt, router.devices["eth0"])
    back = router.devices["eth0"].tx_buffer
    assert len(back) == 1
    info = back[0]._l4_offset()
    message = Icmpv6Message.parse(bytes(back[0].data), info[1])
    assert (message.msg_type, message.code) == (1, 4)


def test_wildcard_port_listener(router):
    seen = []
    router.bind(lambda pkt, node: seen.append(pkt), proto=17, port=None)
    router.receive(
        make_udp_packet("fc00:1::1", "fc00:e::1", 1, 1234, b""), router.devices["eth0"]
    )
    router.receive(
        make_udp_packet("fc00:1::1", "fc00:e::1", 1, 5678, b""), router.devices["eth0"]
    )
    assert len(seen) == 2


def test_echo_request_answered(router):
    ping = make_icmpv6_packet("fc00:1::1", "fc00:e::1", echo_request(1, 1, b"abc"))
    router.receive(ping, router.devices["eth0"])
    back = router.devices["eth0"].tx_buffer
    assert len(back) == 1
    info = back[0]._l4_offset()
    message = Icmpv6Message.parse(bytes(back[0].data), info[1])
    assert message.msg_type == 129
    assert message.body[4:] == b"abc"


def test_send_does_not_decrement_hop_limit(router):
    pkt = make_udp_packet("fc00:e::1", "fc00:2::2", 1, 2, b"x", hop_limit=64)
    router.send(pkt)
    assert router.devices["eth1"].tx_buffer[0].hop_limit == 64


def test_seg6_encap_route_recirculates(router):
    router.add_route(
        "fc00:9::/64", encap=Seg6Encap(segments=[pton("fc00:2::e1")], mode="encap")
    )
    router.add_route("fc00:2::e1/128", via="fc00:2::1", dev="eth1")
    pkt = make_udp_packet("fc00:1::1", "fc00:9::9", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    out = router.devices["eth1"].tx_buffer
    assert len(out) == 1
    assert out[0].dst == pton("fc00:2::e1")
    srh, _ = out[0].srh()
    assert srh is not None


def test_seg6local_end_route(router):
    router.add_route("fc00:e::100/128", encap=End())
    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    out = router.devices["eth1"].tx_buffer
    assert out[0].dst == pton("fc00:2::2")
    assert router.counters.seg6local_processed == 1


def test_end_then_dt6_chain():
    """Two seg6local hops on different nodes: End then End.DT6."""
    n1 = Node("N1")
    n1.add_device("in")
    n1.add_device("out")
    n1.add_address("fc00:a::1")
    n1.add_route("fc00:a::100/128", encap=End())
    n1.add_route("fc00:b::/64", via="fc00:b::1", dev="out")

    n2 = Node("N2")
    n2.add_device("in")
    n2.add_device("out")
    n2.add_address("fc00:b::1")
    n2.add_route("fc00:b::100/128", encap=EndDT6(table_id=254))
    n2.add_route("fc00:2::/64", via="fc00:2::1", dev="out")

    inner = make_udp_packet("fc00:1::1", "fc00:2::2", 5, 6, b"payload")
    from repro.net import make_srh, push_outer_encap

    srh = make_srh(["fc00:a::100", "fc00:b::100"], next_header=41)
    pkt_bytes = push_outer_encap(bytes(inner.data), pton("fc00:1::1"), srh)
    from repro.net import Packet

    n1.receive(Packet(pkt_bytes), n1.devices["in"])
    mid = n1.devices["out"].tx_buffer.pop()
    assert mid.dst == pton("fc00:b::100")
    n2.receive(mid, n2.devices["in"])
    final = n2.devices["out"].tx_buffer.pop()
    assert final.srh() is None
    assert final.udp_payload() == b"payload"


def test_bpf_drop_counted(router):
    prog = Program("mov r0, 2\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    router.add_route("fc00:e::100/128", encap=EndBPF(prog))
    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.dropped == 1
    assert router.counters.bpf_dropped == 1
    assert not router.devices["eth1"].tx_buffer


def test_unknown_bpf_return_drops(router):
    prog = Program("mov r0, 99\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    action = EndBPF(prog)
    router.add_route("fc00:e::100/128", encap=action)
    pkt = make_srv6_udp_packet("fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.dropped == 1
    assert action.stats["drop"] == 1
    # A malformed verdict is a datapath policy drop, not the program's own
    # BPF_DROP: the Disposition carries bpf=False, so bpf_dropped ignores it.
    assert router.counters.bpf_dropped == 0


def test_endbpf_srh_validation_drop_is_not_bpf_dropped(router):
    """Pre-program SRH validation failures never count as BPF drops."""
    prog = Program("mov r0, 0\nexit", allowed_helpers=SEG6LOCAL_HELPERS)
    router.add_route("fc00:e::100/128", encap=EndBPF(prog))
    pkt = make_udp_packet("fc00:1::1", "fc00:e::100", 1, 2, b"x")  # no SRH
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.dropped == 1
    assert router.counters.bpf_dropped == 0


def test_bpf_lwt_drop_counted_as_bpf_dropped(router):
    """BPF_DROP from an lwt hook sets Disposition.bpf, counted per verdict."""
    prog = Program("mov r0, 2\nexit", allowed_helpers=LWT_HELPERS)
    router.add_route(
        "fc00:3::/64", via="fc00:2::1", dev="eth1", encap=BpfLwt(prog_in=prog)
    )
    pkt = make_udp_packet("fc00:1::1", "fc00:3::3", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.dropped == 1
    assert router.counters.bpf_dropped == 1


def test_receive_accounts_ingress_device_stats(router):
    """Node.receive wires ``dev`` through to the ip -s link rx counters."""
    eth0 = router.devices["eth0"]
    pkt = make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x")
    size = len(pkt)
    router.receive(pkt, eth0)
    assert eth0.stats.rx_packets == 1
    assert eth0.stats.rx_bytes == size
    assert pkt.input_dev == "eth0"
    batch = [make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x") for _ in range(4)]
    router.receive_batch(batch, eth0)
    assert eth0.stats.rx_packets == 5
    assert eth0.stats.rx_bytes == 5 * size


def test_bpf_lwt_in_can_drop(router):
    prog = Program("mov r0, 2\nexit", allowed_helpers=LWT_HELPERS)
    router.add_route("fc00:3::/64", via="fc00:2::1", dev="eth1", encap=BpfLwt(prog_in=prog))
    pkt = make_udp_packet("fc00:1::1", "fc00:3::3", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert not router.devices["eth1"].tx_buffer


def test_bpf_lwt_out_pass_through(router):
    prog = Program("mov r0, 0\nexit", allowed_helpers=LWT_HELPERS)
    lwt = BpfLwt(prog_out=prog)
    router.add_route("fc00:3::/64", via="fc00:2::1", dev="eth1", encap=lwt)
    pkt = make_udp_packet("fc00:1::1", "fc00:3::3", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert len(router.devices["eth1"].tx_buffer) == 1
    assert lwt.stats["ok"] == 1


def test_ecmp_route_spreads_flows(router):
    router.add_route(
        "fc00:5::/64",
        nexthops=[Nexthop(via="fc00:1::1", dev="eth0"), Nexthop(via="fc00:2::1", dev="eth1")],
    )
    for port in range(60):
        pkt = make_udp_packet("fc00:1::1", "fc00:5::5", 1000 + port, 2, b"")
        router.receive(pkt, router.devices["eth0"])
    a = len(router.devices["eth0"].tx_buffer)
    b = len(router.devices["eth1"].tx_buffer)
    assert a + b == 60
    assert a > 10 and b > 10


def test_recirculation_budget_stops_loops(router):
    # A seg6 encap whose result matches the same route again: endless
    # re-encapsulation must be stopped by the budget.
    router.add_route(
        "fc00:7::/64", encap=Seg6Encap(segments=[pton("fc00:7::1")], mode="encap")
    )
    pkt = make_udp_packet("fc00:1::1", "fc00:7::7", 1, 2, b"x")
    router.receive(pkt, router.devices["eth0"])
    assert router.counters.dropped == 1
    assert any("re-circulation" in msg for msg in router.log_messages)


def test_rx_timestamp_set_on_receive():
    node = Node("N", clock_ns=lambda: 555)
    node.add_device("eth0")
    node.add_address("fc00::1")
    seen = []
    node.bind(lambda pkt, n: seen.append(pkt.rx_tstamp_ns), proto=17, port=1)
    node.receive(make_udp_packet("fc00::2", "fc00::1", 9, 1, b""), node.devices["eth0"])
    assert seen == [555]


def test_duplicate_device_rejected(router):
    with pytest.raises(ValueError):
        router.add_device("eth0")


def test_runt_packet_dropped(router):
    from repro.net import Packet

    router.receive(Packet(b"\x60\x00\x00"), router.devices["eth0"])
    assert router.counters.dropped == 1
