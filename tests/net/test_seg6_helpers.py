"""The SRv6 eBPF helpers of §3.1: restrictions and semantics."""

import pytest

from repro.ebpf import Program
from repro.net import (
    EndBPF,
    Node,
    Packet,
    SEG6LOCAL_HELPERS,
    SRH,
    make_srv6_udp_packet,
    make_udp_packet,
    ntop,
    pton,
)

SEG = "fc00:e::100"


@pytest.fixture
def router():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00:e::1")
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1")
    return node


def run_end_bpf(router, asm, pkt, jit=True):
    prog = Program(asm, jit=jit, allowed_helpers=SEG6LOCAL_HELPERS)
    router.add_route(f"{SEG}/128", encap=EndBPF(prog))
    router.receive(pkt, router.devices["eth0"])
    buf = router.devices["eth1"].tx_buffer
    return buf.pop() if buf else None


def srv6_pkt(**kwargs):
    return make_srv6_udp_packet("fc00:1::1", [SEG, "fc00:2::2"], 1111, 2222, b"y" * 32, **kwargs)


# --- lwt_seg6_store_bytes ------------------------------------------------------


STORE_FLAGS = """
    mov r6, r1
    mov r2, 0xab
    stxb [r10-1], r2
    mov r1, r6
    mov r2, 45                 ; flags byte (40 + 5)
    mov r3, r10
    add r3, -1
    mov r4, 1
    call lwt_seg6_store_bytes
    mov r0, 0
    exit
"""


def test_store_bytes_flags_field(router):
    out = run_end_bpf(router, STORE_FLAGS, srv6_pkt())
    srh, _ = out.srh()
    assert srh.flags == 0xAB


def run_store_at(router, offset, length=1):
    """Return the helper's return code for a write at (offset, length)."""
    asm = f"""
    mov r6, r1
    mov r2, 0
    stxdw [r10-8], r2
    mov r1, r6
    mov r2, {offset}
    mov r3, r10
    add r3, -8
    mov r4, {length}
    call lwt_seg6_store_bytes
    jeq r0, 0, ok
    mov r0, 2
    exit
    ok:
    mov r0, 0
    exit
    """
    out = run_end_bpf(router, asm, srv6_pkt())
    return out is not None  # BPF_DROP (=2) means the helper refused


def test_store_bytes_rejects_segments_left(router):
    assert not run_store_at(router, 43)  # segments_left byte


def test_store_bytes_rejects_hdr_ext_len(router):
    assert not run_store_at(router, 41)


def test_store_bytes_rejects_segment_list(router):
    assert not run_store_at(router, 48, 8)  # inside the segment list


def test_store_bytes_accepts_tag(router):
    assert run_store_at(router, 46, 2)


def test_store_bytes_rejects_straddling_write(router):
    # flags..tag is editable (45..48) but 47..49 spills into the segments.
    assert not run_store_at(router, 47, 2)


def test_store_bytes_rejects_past_srh_end(router):
    assert not run_store_at(router, 80, 8)  # beyond the (TLV-less) SRH


# --- lwt_seg6_adjust_srh ----------------------------------------------------------


GROW_AND_FILL = """
    mov r6, r1
    mov r1, r6
    mov r2, 80                 ; end of the 2-segment SRH (40 + 8 + 32)
    mov r3, 8
    call lwt_seg6_adjust_srh
    jne r0, 0, fail
    stb [r10-8], 10
    stb [r10-7], 6
    stw [r10-6], 0
    sth [r10-2], 0
    mov r1, r6
    mov r2, 80
    mov r3, r10
    add r3, -8
    mov r4, 8
    call lwt_seg6_store_bytes
    jne r0, 0, fail
    mov r0, 0
    exit
    fail:
    mov r0, 2
    exit
"""


def test_adjust_srh_grows_tlv_area(router):
    pkt = srv6_pkt()
    before_len = len(pkt.data)
    out = run_end_bpf(router, GROW_AND_FILL, pkt)
    assert out is not None
    assert len(out.data) == before_len + 8
    srh, _ = out.srh()
    assert srh.hdr_ext_len == 5
    assert srh.find_tlv(10) is not None
    assert out.ipv6().payload_length == before_len - 40 + 8
    # Inner UDP still intact after the TLV area grew.
    assert out.udp_payload() == b"y" * 32


def test_adjust_srh_without_fill_drops_packet(router):
    # Grown space left as zero bytes is an invalid TLV area -> the packet
    # fails the post-run SRH validation and must be dropped.
    asm = """
    mov r6, r1
    mov r1, r6
    mov r2, 80
    mov r3, 8
    call lwt_seg6_adjust_srh
    mov r0, 0
    exit
    """
    out = run_end_bpf(router, asm, srv6_pkt())
    # Zero-filled TLV area parses as Pad1s, which *is* valid; ensure
    # the SRH was revalidated rather than rejected.
    assert out is not None
    srh, _ = out.srh()
    assert len(srh.tlv_bytes) == 8


def adjust(router, offset, delta):
    asm = f"""
    mov r6, r1
    mov r1, r6
    mov r2, {offset}
    mov r3, {delta}
    call lwt_seg6_adjust_srh
    jeq r0, 0, ok
    mov r0, 2
    exit
    ok:
    mov r0, 0
    exit
    """
    return run_end_bpf(router, asm, srv6_pkt()) is not None


def test_adjust_srh_rejects_unaligned_delta(router):
    assert not adjust(router, 80, 4)


def test_adjust_srh_rejects_offset_before_tlv_area(router):
    assert not adjust(router, 48, 8)


def test_adjust_srh_rejects_shrink_below_segments(router):
    assert not adjust(router, 80, -8)


def test_adjust_srh_shrink_removes_tlvs(router):
    from repro.net.srh import Tlv

    pkt = make_srv6_udp_packet(
        "fc00:1::1", [SEG, "fc00:2::2"], 1, 2, b"z",
        tlvs=[Tlv(10, b"abcdef")],
    )
    asm = """
    mov r6, r1
    mov r1, r6
    mov r2, 80
    mov r3, -8
    call lwt_seg6_adjust_srh
    jeq r0, 0, ok
    mov r0, 2
    exit
    ok:
    mov r0, 0
    exit
    """
    out = run_end_bpf(router, asm, pkt)
    assert out is not None
    srh, _ = out.srh()
    assert srh.tlv_bytes == b""


# --- lwt_seg6_action ------------------------------------------------------------------


END_X_ACTION = """
    mov r6, r1
    stb [r10-16], 0xfc
    stb [r10-15], 0
    stw [r10-14], 0
    stw [r10-10], 0
    stw [r10-6], 0
    sth [r10-2], 0
    stb [r10-1], 0x77
    mov r1, r6
    mov r2, 2                  ; SEG6_LOCAL_ACTION_END_X
    mov r3, r10
    add r3, -16
    mov r4, 16
    call lwt_seg6_action
    jne r0, 0, fail
    mov r0, 7                  ; BPF_REDIRECT
    exit
    fail:
    mov r0, 2
    exit
"""


def test_action_end_x_redirects(router):
    router.add_route("fc00::77/128", via="fc00::77", dev="eth1")
    out = run_end_bpf(router, END_X_ACTION, srv6_pkt())
    assert out is not None
    # Packet still addressed to the next segment; it left via the
    # forced nexthop's route.
    assert out.dst == pton("fc00:2::2")


def test_action_end_t_uses_table(router):
    router.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1", table_id=77)
    asm = """
    mov r6, r1
    stw [r10-4], 77
    mov r1, r6
    mov r2, 3                  ; SEG6_LOCAL_ACTION_END_T
    mov r3, r10
    add r3, -4
    mov r4, 4
    call lwt_seg6_action
    jne r0, 0, fail
    mov r0, 7
    exit
    fail:
    mov r0, 2
    exit
    """
    # Remove the main-table route: only table 77 can forward this.
    router.main_table().remove(pton("fc00:2::"), 64)
    out = run_end_bpf(router, asm, srv6_pkt())
    assert out is not None


def test_action_end_dt6_decapsulates(router):
    from repro.net import make_srh, push_outer_encap

    inner = bytes(make_udp_packet("fc00:1::1", "fc00:2::2", 7, 8, b"inner").data)
    srh = make_srh([SEG, "fc00:2::2"], next_header=41)
    # Hand-build: outer dst = SEG (current segment), one more segment after.
    outer = push_outer_encap(inner, pton("fc00::9"), srh)
    pkt = Packet(outer)
    asm = """
    mov r6, r1
    stw [r10-4], 254
    mov r1, r6
    mov r2, 7                  ; SEG6_LOCAL_ACTION_END_DT6
    mov r3, r10
    add r3, -4
    mov r4, 4
    call lwt_seg6_action
    jne r0, 0, fail
    mov r0, 7
    exit
    fail:
    mov r0, 2
    exit
    """
    out = run_end_bpf(router, asm, pkt)
    assert out is not None
    assert out.srh() is None
    assert out.udp_payload() == b"inner"


def test_action_bad_param_size_fails(router):
    asm = """
    mov r6, r1
    stw [r10-4], 0
    mov r1, r6
    mov r2, 2                  ; END_X wants 16 bytes, give 4
    mov r3, r10
    add r3, -4
    mov r4, 4
    call lwt_seg6_action
    jeq r0, 0, ok
    mov r0, 2
    exit
    ok:
    mov r0, 0
    exit
    """
    assert run_end_bpf(router, asm, srv6_pkt()) is None


def test_action_unknown_action_fails(router):
    asm = """
    mov r6, r1
    stw [r10-4], 0
    mov r1, r6
    mov r2, 99
    mov r3, r10
    add r3, -4
    mov r4, 4
    call lwt_seg6_action
    jeq r0, 0, ok
    mov r0, 2
    exit
    ok:
    mov r0, 0
    exit
    """
    assert run_end_bpf(router, asm, srv6_pkt()) is None


# --- get_ecmp_nexthops -------------------------------------------------------------------


def test_ecmp_helper_counts_and_addresses(router):
    from repro.net import Nexthop

    router.add_route(
        "fc00:9::/64",
        nexthops=[Nexthop(via="fc00::a", dev="eth1"), Nexthop(via="fc00::b", dev="eth1")],
    )
    asm = """
    mov r6, r1
    ; query address fc00:9::1 on the stack
    stb [r10-16], 0xfc
    stb [r10-15], 0
    stb [r10-14], 0
    stb [r10-13], 9
    stw [r10-12], 0
    stw [r10-8], 0
    sth [r10-4], 0
    stb [r10-2], 0
    stb [r10-1], 1
    mov r1, r6
    mov r2, r10
    add r2, -16
    mov r3, r10
    add r3, -80
    mov r4, 64
    call get_ecmp_nexthops
    exit
    """
    prog = Program(asm, allowed_helpers=SEG6LOCAL_HELPERS)
    hctx = prog.make_context(bytes(srv6_pkt().data))
    hctx.node = router
    hctx.hook = "seg6local"
    assert prog.run(hctx) == 2


def test_ecmp_helper_respects_buffer_size(router):
    from repro.net import Nexthop

    router.add_route(
        "fc00:9::/64",
        nexthops=[
            Nexthop(via="fc00::a", dev="eth1"),
            Nexthop(via="fc00::b", dev="eth1"),
            Nexthop(via="fc00::c", dev="eth1"),
        ],
    )
    asm = """
    mov r6, r1
    stb [r10-16], 0xfc
    stb [r10-15], 0
    stb [r10-14], 0
    stb [r10-13], 9
    stw [r10-12], 0
    stw [r10-8], 0
    stw [r10-4], 0
    mov r1, r6
    mov r2, r10
    add r2, -16
    mov r3, r10
    add r3, -48
    mov r4, 32
    call get_ecmp_nexthops
    exit
    """
    prog = Program(asm, allowed_helpers=SEG6LOCAL_HELPERS)
    hctx = prog.make_context(bytes(srv6_pkt().data))
    hctx.node = router
    hctx.hook = "seg6local"
    assert prog.run(hctx) == 2  # only two fit in 32 bytes


# --- hook restrictions ---------------------------------------------------------------------


def test_push_encap_not_on_seg6local_hook(router):
    from repro.ebpf import VerifierError

    asm = """
    mov r1, r1
    stdw [r10-8], 0
    mov r2, 0
    mov r3, r10
    add r3, -8
    mov r4, 8
    call lwt_push_encap
    mov r0, 0
    exit
    """
    with pytest.raises(VerifierError, match="not available"):
        Program(asm, allowed_helpers=SEG6LOCAL_HELPERS)


def test_srh_modification_flag_set(router):
    prog = Program(STORE_FLAGS, allowed_helpers=SEG6LOCAL_HELPERS)
    hctx = prog.make_context(bytes(srv6_pkt().data))
    hctx.hook = "seg6local"
    prog.run(hctx)
    assert hctx.metadata.get("srh_modified") is True
