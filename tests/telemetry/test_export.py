"""Export stream contracts: determinism, sinks, session lifecycle."""

import json

import pytest

from repro.ebpf.jit import clear_handler_cache
from repro.ebpf.text import load_text
from repro.lab import Network
from repro.net.lwt_bpf import BpfLwt
from repro.sim.scheduler import NS_PER_MS
from repro.telemetry import FileSink, RingSink


PERF_SRC = """
; export the packet length per transmitted packet (End.DM-style channel)
.map events, perf_event_array, entries=1
    r6 = r1
    r2 = *(u32 *)(r6 + 0)
    *(u64 *)(r10 - 8) = r2
    r1 = r6
    r2 = events ll
    r3 = 0
    r4 = r10
    r4 += -8
    r5 = 8
    call perf_event_output
    r0 = 0
    exit
"""


def _ctrl_net(seed: int) -> Network:
    """The FRR square with a flow and a mid-run failure — a busy export."""
    net = Network(seed=seed)
    for name in ("A", "B", "C", "D"):
        net.add_node(name, addr=f"fc00:{name.lower()}::1")
    net.add_link("A", "B")
    net.add_link("B", "D")
    net.add_link("A", "C")
    net.add_link("C", "D")
    costs = {("A", "eth0"): 5, ("B", "eth0"): 5, ("B", "eth1"): 5, ("D", "eth0"): 5}
    net.ctrl(frr=True, hello_interval_ns=10 * NS_PER_MS, costs=costs)
    net.sink("D")
    flow = net.trafgen("A", dst="fc00:d::1", rate_bps=5e6, payload_size=600)
    flow.start(at_ns=150 * NS_PER_MS, duration_ns=250 * NS_PER_MS)
    net.fail_link("A", "B", at_ns=300 * NS_PER_MS)
    return net


def _run_ctrl_export(seed: int) -> str:
    clear_handler_cache()  # JIT stats are process-global; start cold
    net = _ctrl_net(seed)
    session = net.telemetry(interval_ms=20, sink=RingSink(capacity=None))
    net.run(until_ms=450)
    session.close()
    return session.sink.text()


def test_seeded_runs_export_byte_identical_jsonl():
    first = _run_ctrl_export(seed=42)
    second = _run_ctrl_export(seed=42)
    assert first == second
    # The stream really carried both record types, not just empty ticks.
    kinds = {json.loads(line)["type"] for line in first.splitlines()}
    assert kinds == {"event", "sample"}
    assert "frr-fired" in first


def _run_perf_export(seed: int) -> str:
    """A jittery link with a BPF LWT program streaming per-packet records."""
    clear_handler_cache()  # JIT stats are process-global; start cold
    net = Network(seed=seed)
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B", delay_ns=1000, jitter_ns=2000, loss=0.02)
    prog = load_text(PERF_SRC, name="stamp")
    net["A"].add_route(
        "fc00:b::/64", via="fc00:b::1", dev="eth0", encap=BpfLwt(prog_xmit=prog)
    )
    net.config("B", "route add fc00:a::/64 via fc00:a::1 dev eth0")
    net.sink("B")
    flow = net.trafgen("A", dst="fc00:b::1", rate_bps=10e6)
    flow.start(duration_ns=50 * NS_PER_MS)
    session = net.telemetry(interval_ms=10, sink=RingSink(capacity=None))
    net.run(until_ms=80)
    session.close()
    return session.sink.text()


def test_perf_records_exported_deterministically():
    first = _run_perf_export(seed=9)
    assert first == _run_perf_export(seed=9)
    records = [json.loads(line) for line in first.splitlines()]
    perf = [r for r in records if r["type"] == "perf"]
    assert perf, "the LWT program's perf records must reach the export"
    assert all(r["ring"] == "events" for r in perf)
    # Timestamps never go backwards within a sampler tick's merge.
    times = [r["t"] for r in perf]
    assert times == sorted(times)


def test_different_seeds_diverge():
    # Jitter and loss draw from the seeded RNG, so the streams must differ.
    assert _run_perf_export(seed=9) != _run_perf_export(seed=10)


def test_ring_sink_bounded_and_lossy():
    sink = RingSink(capacity=3)
    assert [sink.emit(str(i)) for i in range(5)] == [True, True, True, False, False]
    assert sink.dropped == 2
    assert sink.lines() == ["0", "1", "2"]
    assert sink.tail(2) == ["1", "2"]
    with pytest.raises(ValueError):
        RingSink(capacity=0)


def test_file_sink_writes_jsonl(tmp_path):
    path = tmp_path / "export.jsonl"
    net = Network(seed=5)
    net.add_node("A", addr="fc00:a::1")
    session = net.telemetry(interval_ms=10, sink=FileSink(path))
    net.run(until_ms=35)
    session.close()
    lines = path.read_text().splitlines()
    assert len(lines) >= 3
    assert all(json.loads(line)["type"] == "sample" for line in lines)
    seqs = [json.loads(line)["seq"] for line in lines]
    assert seqs == list(range(len(lines)))


def test_one_session_per_network():
    net = Network(seed=1)
    net.add_node("A", addr="fc00:a::1")
    session = net.telemetry()
    with pytest.raises(RuntimeError):
        net.telemetry()
    session.close()
    replacement = net.telemetry()  # a closed session frees the slot
    assert replacement is not session
    replacement.close(final_sample=False)


def test_close_cancels_sampler_and_context_manager():
    net = Network(seed=2)
    net.add_node("A", addr="fc00:a::1")
    with net.telemetry(interval_ms=10) as session:
        net.run(until_ms=25)
    taken = session.samples
    assert session.closed
    net.run(until_ms=100)  # the timer is gone: no further samples
    assert session.samples == taken
