"""Perf rings under pressure: drop accounting, drain order, bridging.

The §4.1 kernel→user channel is bounded and lossy — under pressure the
kernel counts what it sheds rather than blocking the datapath.  These
tests pin that contract on :class:`~repro.userspace.perf.PerfRing`, the
poller on top of it, and the telemetry bridge that merges several rings
into one time-ordered export stream.
"""

import json

from repro.ebpf import PerfEventArrayMap
from repro.lab import Network
from repro.userspace.perf import PerfPoller, PerfRecord, PerfRing


def test_ring_drops_when_full_and_counts():
    ring = PerfRing(capacity=4)
    accepted = [ring.push(bytes([i]), time_ns=i) for i in range(10)]
    assert accepted == [True] * 4 + [False] * 6
    assert ring.pushed == 4
    assert ring.dropped == 6
    assert len(ring) == 4
    # The drop counter survives a drain: it is cumulative shed accounting.
    ring.drain()
    assert ring.dropped == 6
    assert ring.push(b"x") is True  # space again after the drain


def test_drain_is_fifo_and_bounded():
    ring = PerfRing(capacity=8)
    for i in range(6):
        ring.push(bytes([i]), time_ns=100 + i)
    first = ring.drain(max_records=2)
    rest = ring.drain()
    assert first == [bytes([0]), bytes([1])]
    assert rest == [bytes([i]) for i in range(2, 6)]
    assert ring.drain() == []


def test_drain_records_keeps_timestamps():
    ring = PerfRing()
    ring.push(b"a", time_ns=5)
    ring.push(b"b", time_ns=9)
    assert ring.drain_records() == [PerfRecord(5, b"a"), PerfRecord(9, b"b")]


def test_poller_dispatches_per_cpu_under_pressure():
    rings = [PerfRing(capacity=2) for _ in range(2)]
    for i in range(5):
        rings[0].push(bytes([i]))
        rings[1].push(bytes([0x10 + i]))
    seen = []
    poller = PerfPoller()
    poller.subscribe(rings, lambda cpu, data: seen.append((cpu, data)))
    count = poller.poll()
    assert count == 4  # capacity 2 per ring survived the burst
    assert seen == [(0, b"\x00"), (0, b"\x01"), (1, b"\x10"), (1, b"\x11")]
    assert rings[0].dropped == 3 and rings[1].dropped == 3


def _quiet_net():
    net = Network(seed=3)
    net.add_node("A", addr="fc00:a::1")
    return net


def test_bridge_merges_rings_in_timestamp_order():
    """A sampler tick drains several rings into one time-ordered stream."""
    pmap_a = PerfEventArrayMap("alpha", max_entries=2)
    pmap_b = PerfEventArrayMap("beta", max_entries=1)
    net = _quiet_net()
    session = net.telemetry(interval_ms=10, rings={"alpha": pmap_a, "beta": pmap_b})

    # Interleave pushes across rings and CPUs with distinct timestamps.
    pmap_a.output(0, b"\x01", time_ns=300)
    pmap_b.output(0, b"\x02", time_ns=100)
    pmap_a.output(1, b"\x03", time_ns=200)
    pmap_b.output(0, b"\x04", time_ns=400)
    pmap_a.output(0, b"\x05", time_ns=50)

    session.sample()
    records = session.sink.records()
    perf = [r for r in records if r["type"] == "perf"]
    assert [r["t"] for r in perf] == [50, 100, 200, 300, 400]
    assert [r["data"] for r in perf] == ["05", "02", "03", "01", "04"]
    assert {r["ring"] for r in perf} == {"alpha", "beta"}
    # Ring drop accounting rides along in the snapshot record.
    snapshot = [r for r in records if r["type"] == "sample"][-1]
    assert snapshot["drops"] == {"rings": 0, "sink": 0}
    session.close(final_sample=False)


def test_bridge_reports_ring_drops():
    pmap = PerfEventArrayMap("events", max_entries=1)
    ring = pmap.ring(0)
    net = _quiet_net()
    session = net.telemetry(interval_ms=10, rings={"events": pmap})
    for i in range(ring.capacity + 7):
        pmap.output(0, b"\x00", time_ns=i)
    session.sample()
    snapshot = session.sink.records()[-1]
    assert snapshot["drops"]["rings"] == 7
    session.close(final_sample=False)


def test_perf_event_output_helper_stamps_program_clock():
    """The eBPF helper stamps records with the invocation clock (§4.1)."""
    from repro.ebpf.text import load_text

    src = """
; push 8 bytes to user space
.map events, perf_event_array, entries=1
    r2 = events ll
    r3 = 0
    r4 = r10
    r4 += -8
    *(u64 *)(r10 - 8) = r3
    r5 = 8
    call perf_event_output
    r0 = 0
    exit
"""
    prog = load_text(src, name="stamp")
    ctx = prog.make_context(b"\x00" * 64, clock_ns=lambda: 777)
    assert prog.run(ctx) == 0
    records = prog.maps["events"].ring(0).drain_records()
    assert records == [PerfRecord(777, b"\x00" * 8)]


def test_sink_lines_are_canonical_json():
    net = _quiet_net()
    session = net.telemetry(interval_ms=10)
    session.sample()
    for line in session.sink.lines():
        assert json.loads(line)  # valid JSON
        assert line == json.dumps(
            json.loads(line), sort_keys=True, separators=(",", ":"), default=str
        )
    session.close(final_sample=False)
