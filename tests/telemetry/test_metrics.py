"""MetricsRegistry unit behaviour: instruments, labels, collection order."""

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry, Sample


def test_counter_inc_and_value():
    registry = MetricsRegistry()
    c = registry.counter("node_rx", node="R")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert registry.value("node_rx", node="R") == 5


def test_counter_rejects_negative():
    c = Counter("c", ())
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_identity_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("hits", node="A")
    b = registry.counter("hits", node="B")
    again = registry.counter("hits", node="A")
    assert a is again and a is not b
    a.inc()
    assert registry.value("hits", node="A") == 1
    assert registry.value("hits", node="B") == 0


def test_gauge_set_and_pull():
    registry = MetricsRegistry()
    g = registry.gauge("depth", node="A")
    g.set(7)
    backing = [1, 2, 3]
    registry.gauge("depth_fn", fn=lambda: len(backing), node="A")
    values = registry.as_dict()
    assert values["depth{node=A}"] == 7
    assert values["depth_fn{node=A}"] == 3
    backing.append(4)
    assert registry.as_dict()["depth_fn{node=A}"] == 4


def test_histogram_buckets_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("lat", bounds=(10, 100), node="A")
    for v in (5, 50, 500):
        h.observe(v)
    values = registry.as_dict()
    assert values["lat_count{node=A}"] == 3
    assert values["lat_sum{node=A}"] == 555
    assert values["lat_bucket{le=10,node=A}"] == 1
    assert values["lat_bucket{le=100,node=A}"] == 2
    assert values["lat_bucket{le=+Inf,node=A}"] == 3


def test_histogram_exemplars_are_sideband():
    registry = MetricsRegistry()
    h = registry.histogram("lat", bounds=(10, 100), node="A")
    before = [s for s in h.samples()]
    h.observe(5)  # untraced: no exemplar
    h.observe(50, trace_id="3:14")
    h.observe(60, trace_id="3:15")  # same bucket: last writer wins
    h.observe(500, trace_id="3:16")  # +Inf overflow bucket
    assert h.exemplars == {1: (60, "3:15"), 2: (500, "3:16")}
    # samples() output carries no exemplar fields — the export stream
    # (pinned byte for byte by the determinism tests) is unchanged.
    assert {s.name for s in h.samples()} == {s.name for s in before}
    values = registry.as_dict()
    assert values["lat_count{node=A}"] == 4
    assert values["lat_bucket{le=+Inf,node=A}"] == 4


def test_flowmeter_delay_exemplars_lockstep():
    from repro.net import make_udp_packet
    from repro.sim.stats import FlowMeter

    class _Node:
        name = "D"

        @staticmethod
        def clock_ns():
            return 1_000

    meter = FlowMeter("m")
    traced = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"x")
    traced.flow_id, traced.seq, traced.tx_tstamp_ns = 9, 4, 400
    traced.tctx = [(400, 400, "emit", "A", "")]
    plain = make_udp_packet("fc00::1", "fc00::2", 1, 2, b"x")
    plain.flow_id, plain.seq, plain.tx_tstamp_ns = 9, 5, 500
    meter.on_packet(traced, _Node)
    meter.on_packet(plain, _Node)
    assert meter.delays_ns == [600, 500]
    assert meter.delay_exemplars == ["9:4", None]


def test_collect_is_sorted_and_deterministic():
    registry = MetricsRegistry()
    registry.counter("zeta")
    registry.counter("alpha", node="B")
    registry.counter("alpha", node="A")
    names = [s.render() for s in registry.collect()]
    assert names == sorted(names)
    assert names[0] == "alpha{node=A}"


def test_collector_registration_and_query():
    registry = MetricsRegistry()
    registry.register(lambda: [Sample("dyn_total", (("node", "X"),), 9)])
    assert registry.as_dict()["dyn_total{node=X}"] == 9
    assert registry.query("dyn") == {"dyn_total{node=X}": 9}
    assert registry.query("dyn", "node=X") == {"dyn_total{node=X}": 9}
    assert registry.query("nope") == {}


def test_sample_render():
    assert Sample("m", (("a", "1"), ("b", "2")), 0).render() == "m{a=1,b=2}"
    assert Sample("bare", (), 3).render() == "bare"


def test_owned_metric_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x", node="A")
    with pytest.raises(TypeError):
        registry.gauge("x", node="A")
