"""Sink behaviour under sustained pressure and at close time."""

from __future__ import annotations

import io

from repro.telemetry import FileSink, RingSink


def test_ring_sink_sheds_newest_and_accounts_every_reject():
    sink = RingSink(capacity=4)
    results = [sink.emit(f"line-{i}") for i in range(100)]
    # The ring keeps the OLDEST capacity lines (reject-on-full, not
    # evict-oldest): once full, every later emit is refused and counted.
    assert results == [True] * 4 + [False] * 96
    assert sink.lines() == [f"line-{i}" for i in range(4)]
    assert sink.emitted == 4
    assert sink.dropped == 96
    assert len(sink) == 4


def test_ring_sink_ordering_survives_interleaved_pressure():
    sink = RingSink(capacity=8)
    for i in range(8):
        sink.emit(f"keep-{i}")
    for burst in range(10):
        for i in range(50):
            assert not sink.emit(f"shed-{burst}-{i}")
    assert sink.lines() == [f"keep-{i}" for i in range(8)]
    assert sink.tail(3) == ["keep-5", "keep-6", "keep-7"]
    assert sink.dropped == 500
    assert sink.text() == "".join(f"keep-{i}\n" for i in range(8))


def test_ring_sink_unbounded_never_drops():
    sink = RingSink(capacity=None)
    for i in range(10_000):
        assert sink.emit(str(i))
    assert sink.dropped == 0
    assert sink.emitted == 10_000


def test_file_sink_close_flushes_buffered_lines(tmp_path):
    path = tmp_path / "out.jsonl"
    sink = FileSink(path)
    for i in range(100):
        assert sink.emit(f"row-{i}")
    sink.close()
    assert path.read_text().splitlines() == [f"row-{i}" for i in range(100)]
    assert sink.emitted == 100
    assert sink.dropped == 0


def test_file_sink_borrowed_handle_stays_open_after_close():
    buffer = io.StringIO()
    sink = FileSink(buffer)
    sink.emit("a")
    sink.close()  # flushes, but must not close a handle it doesn't own
    assert not buffer.closed
    assert buffer.getvalue() == "a\n"
    buffer.write("caller continues\n")
