"""The example scripts stay runnable (fast ones run in-process)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "verifier OK" in out
    assert "forwarded 20 packets" in out
    assert "tag 0: 7 packets" in out


def test_ecmp_traceroute_runs(capsys):
    load("ecmp_traceroute").main()
    out = capsys.readouterr().out
    assert "ecmp=[fc00:2a::1, fc00:2b::1]" in out
    assert "(destination)" in out


def test_service_chaining_runs(capsys):
    load("service_chaining").main()
    out = capsys.readouterr().out
    assert "6/6 dropped at fw" in out
    assert "label 3: 2 packets" in out


def test_delay_monitoring_example_logic(capsys):
    """The delay-monitoring example, with the flow shortened for CI."""
    module = load("delay_monitoring")
    # Patch the flow duration down by monkeying the scheduler horizon:
    # the example itself is parameter-free, so just run it — it completes
    # in a few seconds of host time.
    module.main()
    out = capsys.readouterr().out
    assert "mean one-way delay: 3.0" in out


def test_hybrid_access_runs(capsys):
    """The hybrid-access example, with warmup/flow durations cut for CI.

    The storyline must survive shortening: TCP over the uncompensated
    bond collapses, delay compensation recovers most of the aggregate.
    """
    module = load("hybrid_access")
    module.WARMUP_S = 1
    module.DURATION_S = 2
    module.main()
    out = capsys.readouterr().out
    assert "UDP over the bond" in out
    assert "summary: disaster" in out
    assert "compensating link" in out


def test_frr_reroute_runs(capsys):
    """The control-plane example: IGP convergence, then TI-LFA reroute."""
    load("frr_reroute").main()
    out = capsys.readouterr().out
    assert "--- IGP only ---" in out
    assert "--- FRR armed ---" in out
    # Converged primary path, and a seg6 repair visible right after the
    # carrier event in the FRR pass.
    assert "A's converged route: fc00:d::1/128 via" in out
    assert "encap seg6 mode encap segs" in out
    assert "frr fired on A" in out


# Keep this in sync with the per-example tests above: the quickstart
# commands in README.md point at these scripts, so every script must have
# an executing smoke test here — docs can't rot silently.
EXERCISED = {
    "quickstart",
    "ecmp_traceroute",
    "service_chaining",
    "delay_monitoring",
    "hybrid_access",
    "frr_reroute",
}


def test_every_example_is_smoke_tested():
    on_disk = {path.stem for path in EXAMPLES.glob("*.py")}
    assert on_disk == EXERCISED, (
        "examples/ changed: add an executing smoke test above and list the "
        f"script here (disk: {sorted(on_disk)}, exercised: {sorted(EXERCISED)})"
    )


def test_all_examples_have_docstrings_and_main():
    for path in sorted(EXAMPLES.glob("*.py")):
        source = path.read_text()
        assert source.startswith("#!/usr/bin/env python3"), path
        assert '"""' in source, path
        assert 'if __name__ == "__main__":' in source, path
