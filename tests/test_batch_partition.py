"""Batch-partition invariance: how a stream is split must not matter.

The datapath is batch-native — ``Node.receive`` is ``receive_batch`` of
one — so the old scalar-vs-burst differential loses its second subject.
What replaces it is a stronger property: for any packet stream, *every*
partition into batches (one at a time, pairs, odd chunks, the whole
stream, random splits) must forward the exact same bytes in the exact
same per-device order, with the same counters, device stats, action
stats, marks and side effects (perf events, map state).  These tests
drive the §3.2 endpoint functions and the §4.1/§4.2 use cases through
several partitions of the same stream and compare everything
observable.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import copy_batch, make_fig2_router, make_router
from repro.ebpf import ArrayMap, PerfEventArrayMap
from repro.net import BpfLwt, EndBPF, Node, Packet
from repro.progs import (
    dm_config_value,
    dm_encap_prog,
    end_dm_prog,
    end_prog,
    wrr_config_value,
    wrr_prog,
    wrr_state_counters,
)
from repro.sim.trafgen import batch_srv6_udp_flows, batch_udp

FIG2_VARIANTS = (
    "baseline_ipv6",
    "end_static",
    "end_bpf",
    "end_t_static",
    "end_t_bpf",
    "tag_increment_bpf",
    "add_tlv_bpf",
    "add_tlv_bpf_nojit",
)


def partitions_of(count: int) -> list[list[int]]:
    """Batch-size sequences covering the interesting splits of ``count``.

    Fixed sizes 1 (the scalar case), 2, 7 (odd, straddles everything),
    the whole stream, plus two seeded random partitions.
    """
    sizes: list[list[int]] = []
    for fixed in (1, 2, 7, count):
        sizes.append([fixed] * (count // fixed) + ([count % fixed] if count % fixed else []))
    rng = random.Random(0xBA7C4)
    for _ in range(2):
        split: list[int] = []
        left = count
        while left > 0:
            take = min(left, rng.randint(1, max(2, count // 3)))
            split.append(take)
            left -= take
        sizes.append(split)
    return sizes


def drive_partition(node: Node, pkts: list[Packet], sizes: list[int]) -> list[Packet]:
    """Feed ``pkts`` to the node split into batches of the given sizes."""
    dev = node.devices["eth0"]
    offset = 0
    for size in sizes:
        node.receive_batch(pkts[offset : offset + size], dev)
        offset += size
    assert offset == len(pkts)
    return node.devices["eth1"].tx_buffer


def observe(node: Node, out: list[Packet]) -> dict:
    """Everything partition invariance promises to hold constant."""
    return {
        "bytes": [bytes(p.data) for p in out],
        "marks": [p.mark for p in out],
        "traces": [list(p.trace) for p in out],
        "delivered_bytes": sum(len(p) for p in out),
        "counters": dict(vars(node.counters)),
        "dev_stats": {name: dict(vars(d.stats)) for name, d in node.devices.items()},
    }


def assert_partition_invariant(build, templates, extra_observe=None):
    """Drive every partition of ``templates`` through fresh ``build()`` nodes
    and assert the observations all match the batch-of-one reference."""
    reference = None
    for sizes in partitions_of(len(templates)):
        node = build()
        out = drive_partition(node, copy_batch(templates), sizes)
        seen = observe(node, out)
        if extra_observe is not None:
            seen["extra"] = extra_observe(node)
        if reference is None:
            reference = seen
        else:
            assert seen == reference, f"partition {sizes[:8]}... diverged"


@pytest.mark.parametrize("variant", FIG2_VARIANTS)
def test_fig2_variant_partition_invariance(variant):
    """Every §3.2 endpoint function forwards identically for any split."""
    _, templates = make_fig2_router(variant)

    def build():
        node, _ = make_fig2_router(variant)
        return node

    def action_stats(node):
        return [
            dict(route.encap.stats)
            for route in node.main_table().routes()
            if isinstance(route.encap, EndBPF)
        ]

    assert_partition_invariant(build, templates, extra_observe=action_stats)


def test_malformed_srh_partition_invariance():
    """Drop reasons and counters match for broken SRv6 input, however split."""

    def build():
        node = make_router()
        node.add_route("fc00:e::100/128", encap=EndBPF(end_prog()))
        return node

    batch = batch_srv6_udp_flows("fc00:1::1", "fc00:e::100", "fc00:2", 4, 32)
    # Corrupt a spread of packets: exhausted SRH, bad routing type, truncation.
    for pkt in batch[::5]:
        pkt.data[43] = 0  # segments_left = 0
    for pkt in batch[1::5]:
        pkt.data[42] = 9  # not an SRH routing type
    for pkt in batch[2::5]:
        del pkt.data[48:]  # truncate inside the segment list

    assert_partition_invariant(build, batch)


# --- §4.1 delay monitoring ----------------------------------------------------

DM_SEGMENT = "fc00:3::dd"


def make_dm_head():
    """Head-end router with the §4.1 transit sampler (rng-driven)."""
    node = make_router()
    config = ArrayMap(f"dmpart_cfg_{id(object())}", value_size=40, max_entries=1)
    config.update(b"\x00" * 4, dm_config_value(DM_SEGMENT, "fc00:c::1", 9000, 0, 3))
    node.add_route(DM_SEGMENT + "/128", via="fc00:2::2", dev="eth1")
    node.add_route(
        "fc00:2::/64", via="fc00:2::2", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    return node


def test_delay_monitoring_head_partition_invariance():
    """The probabilistic sampler encapsulates the same packets for any split.

    Sampling draws from the node's seeded rng, so identically named
    nodes see the same random sequence; every partition must consume
    draws in exactly the same per-packet order.
    """
    templates = batch_udp("fc00:1::1", "fc00:2::2", 96, payload_size=64)
    assert_partition_invariant(make_dm_head, templates)

    # Some probes must actually have been created for this to test anything.
    node = make_dm_head()
    out = drive_partition(node, copy_batch(templates), [len(templates)])
    assert any(p.next_header == 43 for p in out)


def test_delay_monitoring_tail_partition_invariance():
    """End.DM pushes identical perf records and decapsulates identically."""
    # Harvest one real probe packet by sampling at ratio 1.
    probe_src = make_router()
    config = ArrayMap(f"dmpart_all_{id(object())}", value_size=40, max_entries=1)
    config.update(b"\x00" * 4, dm_config_value(DM_SEGMENT, "fc00:c::1", 9000, 0, 1))
    probe_src.add_route(DM_SEGMENT + "/128", via="fc00:2::2", dev="eth1")
    probe_src.add_route(
        "fc00:2::/64", via="fc00:2::2", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    probe_src.receive(
        batch_udp("fc00:1::1", "fc00:2::2", 1, payload_size=64)[0],
        probe_src.devices["eth0"],
    )
    probe = probe_src.devices["eth1"].tx_buffer.pop()

    plain = batch_udp("fc00:1::1", "fc00:2::2", 64, payload_size=64)
    mix = [
        Packet(bytes(probe.data)) if i % 8 == 0 else Packet(bytes(pkt.data))
        for i, pkt in enumerate(plain)
    ]

    events_boxes = []

    def build():
        node = make_router()
        events = PerfEventArrayMap(f"dmpart_ev_{id(object())}", max_entries=1)
        node.add_route(DM_SEGMENT + "/128", encap=EndBPF(end_dm_prog(events)))
        events_boxes.append(events)
        return node

    def perf_records(node):
        return events_boxes[-1].ring(0).drain()

    assert_partition_invariant(build, mix, extra_observe=perf_records)

    # One record per probe in the mix (the extra_observe drained them, so
    # re-drive once to count).
    node = build()
    drive_partition(node, copy_batch(mix), [len(mix)])
    assert len(events_boxes[-1].ring(0).drain()) == 8


# --- §4.2 hybrid access (WRR scheduler on the LWT hook) -----------------------


def test_hybrid_wrr_partition_invariance():
    """The WRR encapsulator splits flows identically for any batch split."""
    states = []

    def build():
        node = make_router()
        config = ArrayMap(f"wrrpart_cfg_{id(object())}", value_size=40, max_entries=1)
        state = ArrayMap(f"wrrpart_st_{id(object())}", value_size=16, max_entries=1)
        config.update(b"\x00" * 4, wrr_config_value("fc00:b::d0", "fc00:b::d1", 5, 3))
        node.add_route("fc00:b::d0/128", via="fc00:2::2", dev="eth1")
        node.add_route("fc00:b::d1/128", via="fc00:2::2", dev="eth1")
        node.add_route("fc00:2::/64", encap=BpfLwt(prog_out=wrr_prog(config, state)))
        states.append(state)
        return node

    templates = batch_udp("fc00:1::1", "fc00:2::2", 96, payload_size=200)
    assert_partition_invariant(
        build, templates, extra_observe=lambda node: wrr_state_counters(states[-1])
    )

    # The 5:3 split must really have happened (both links saw traffic).
    c0, c1, p0, p1 = wrr_state_counters(states[-1])
    assert p0 > 0 and p1 > 0


def test_icmp_interleaves_in_arrival_order_within_batch():
    """Locally generated ICMP must not jump ahead of parked batch egress.

    A hop-limit-expired packet mid-batch makes the node emit Time
    Exceeded while earlier forwarded packets are still accumulated in
    the egress batch; the per-device wire order must match arrival
    order for every partition.
    """

    def build():
        node = make_router()
        # Route the error's destination (the packet source) out of the
        # same device as forwarded traffic, so ordering is observable.
        node.add_route("fc00:1::/64", via="fc00:2::2", dev="eth1")
        return node

    pkts = batch_udp("fc00:1::1", "fc00:2::2", 3, payload_size=64)
    pkts[1].data[7] = 1  # expires at this router

    assert_partition_invariant(build, pkts)

    node = build()
    out = drive_partition(node, copy_batch(pkts), [3])
    assert len(out) == 3  # pkt1, ICMP Time Exceeded, pkt3
    assert out[1].next_header == 58


# --- the seg6local process_batch entry point ----------------------------------


def test_seg6local_process_batch_matches_single_process():
    """``action.process_batch`` == N single ``process`` calls, per action kind."""
    from repro.net import End, EndT, EndX

    factories = (
        lambda: End(),
        lambda: EndX(nh6="fc00:9::1"),
        lambda: EndT(table_id=254),
        lambda: EndBPF(end_prog()),
    )
    batch = batch_srv6_udp_flows("fc00:1::1", "fc00:e::100", "fc00:2", 4, 12)
    batch[5].data[43] = 0  # one exhausted SRH in the middle

    for factory in factories:
        single_action, batch_action = factory(), factory()
        node_s, node_b = make_router(), make_router()
        single_pkts = [Packet(bytes(p.data)) for p in batch]
        batch_pkts = [Packet(bytes(p.data)) for p in batch]

        single_disps = [single_action.process(p, node_s) for p in single_pkts]
        batch_disps = batch_action.process_batch(batch_pkts, node_b)

        for s, b in zip(single_disps, batch_disps):
            assert (s.action, s.table_id, s.nh6, s.reason, s.bpf) == (
                b.action, b.table_id, b.nh6, b.reason, b.bpf
            ), type(single_action).__name__
        assert [bytes(p.data) for p in single_pkts] == [
            bytes(p.data) for p in batch_pkts
        ], type(single_action).__name__


# --- flow-table invalidation --------------------------------------------------


def test_flow_table_invalidation_on_route_change():
    """A route change between batches takes effect immediately (generation bump)."""
    node = make_router()
    pkts = batch_udp("fc00:1::1", "fc00:2::2", 8, payload_size=64)
    node.receive_batch(copy_batch(pkts), node.devices["eth0"])
    assert len(node.devices["eth1"].tx_buffer) == 8
    assert node.flow_table.hits > 0

    # Shadow the sink route with a more-specific route out of eth0
    # instead; cached entries must not keep the stale resolution.
    node.add_route("fc00:2::2/128", via="fc00:1::1", dev="eth0")
    node.devices["eth1"].tx_buffer.clear()
    node.receive_batch(copy_batch(pkts), node.devices["eth0"])
    assert len(node.devices["eth1"].tx_buffer) == 0
    assert len(node.devices["eth0"].tx_buffer) == 8


def test_flow_table_lru_eviction():
    """The flow table stays bounded under more flows than its capacity."""
    node = make_router()
    node.flow_table.capacity = 16
    pkts = batch_srv6_udp_flows("fc00:1::1", "fc00:e::100", "fc00:2", 64, 64)
    from repro.net import End

    node.add_route("fc00:e::100/128", encap=End())
    node.receive_batch(pkts, node.devices["eth0"])
    assert len(node.flow_table) <= 16
    assert len(node.devices["eth1"].tx_buffer) == 64


# --- trafgen batch conservation ----------------------------------------------


def test_trafgen_batch_pacing_conserves_throughput():
    """Coarser batch pacing delivers the same load with far fewer events.

    Batch pacing is deliberately coarser (that is the optimisation), so
    this checks conservation — same packets sent, all delivered — not
    per-packet timing equality.
    """
    from repro.sim import Link, Scheduler, UdpFlow
    from repro.sim.scheduler import NS_PER_SEC

    def run(burst):
        scheduler = Scheduler()
        clock = scheduler.now_fn()
        a, b = Node("A", clock_ns=clock), Node("B", clock_ns=clock)
        a.add_device("eth0")
        b.add_device("eth0")
        a.add_address("fc00:1::1")
        b.add_address("fc00:2::1")
        Link(scheduler, a.devices["eth0"], b.devices["eth0"], 1e9, 1000)
        a.add_route("fc00:2::/64", via="fc00:2::1", dev="eth0")
        got = []
        b.bind(lambda pkt, node: got.append(len(pkt)), proto=17, port=5201)
        flow = UdpFlow(
            scheduler, a, "fc00:1::1", "fc00:2::1", rate_bps=8e6,
            payload_size=952, burst=burst,
        )
        flow.start(duration_ns=NS_PER_SEC // 10)
        scheduler.run(until_ns=NS_PER_SEC // 5)
        return flow.stats.sent, got, scheduler.events_run

    sent_packet, got_packet, events_packet = run(burst=1)
    sent_batch, got_batch, events_batch = run(burst=16)
    assert sent_packet == 100
    # Batch pacing quantises the stop check to batch boundaries: the last
    # tick before the deadline emits a whole batch.
    assert abs(sent_batch - sent_packet) <= 16
    assert len(got_packet) == sent_packet  # nothing lost, per-packet pacing
    assert len(got_batch) == sent_batch  # nothing lost, batch pacing
    assert set(got_packet) == set(got_batch)  # same wire sizes
    assert events_batch < events_packet / 4  # the point of batch pacing
