"""TI-LFA fast reroute: precomputed plans, carrier-triggered repair, and
the Setup-2 acceptance scenario (core link failure mid-run).

The acceptance contract: with IGP only, deliveries resume after global
reconvergence (loss window ≈ the hello dead-interval); with FRR armed,
post-failure loss is bounded by what was in flight on the failed link.
"""

import pytest

from repro.lab import SETUP2_IGP_COSTS, Network, build_setup2
from repro.net import pton
from repro.sim.scheduler import NS_PER_MS, NS_PER_SEC


def square(frr=True):
    """A—B—D primary, A—C—D detour; no ECMP tie, so failing A—B needs
    a segment repair, while failing B's side exercises survivors too."""
    net = Network(seed=1)
    for name in ("A", "B", "C", "D"):
        net.add_node(name, addr=f"fc00:{name.lower()}::1")
    net.add_link("A", "B")
    net.add_link("B", "D")
    net.add_link("A", "C")
    net.add_link("C", "D")
    costs = {("A", "eth0"): 5, ("B", "eth0"): 5, ("B", "eth1"): 5, ("D", "eth0"): 5}
    return net, net.ctrl(frr=frr, costs=costs)


def test_plans_precomputed_after_convergence():
    net, ctrl = square()
    net.run(until_ms=400)
    plans = ctrl.speakers["A"].frr.plans
    assert set(plans) == {"eth0", "eth1"}
    plan = plans["eth0"]  # losing A—B
    assert plan.repaired > 0
    # Repairs are literal config-plane commands over the fcff SIDs.
    assert any("encap seg6 mode encap segs fcff:" in c for c in plan.commands)
    # The pin (flattened adjacency SID) rides the surviving device.
    assert any("dev eth1" in c for c in plan.commands)


def test_frr_repair_never_self_encapsulates():
    net, ctrl = square()
    net.run(until_ms=400)
    for speaker in ctrl.speakers.values():
        for plan in speaker.frr.plans.values():
            for command in plan.commands:
                if "encap seg6" not in command:
                    continue
                prefix, segs = command.split()[2], command.split()[-1]
                assert prefix.split("/")[0] not in segs.split(","), command


def test_square_failover_loss_windows():
    results = {}
    for frr in (False, True):
        net, ctrl = square(frr=frr)
        net.run(until_ms=400)
        assert ctrl.converged()
        meter = net.sink("D")
        flow = net.trafgen("A", dst="fc00:d::1", rate_bps=20e6, payload_size=1000)
        flow.start(at_ns=400 * NS_PER_MS, duration_ns=600 * NS_PER_MS)
        net.fail_link("A", "B", at_ns=600 * NS_PER_MS)
        net.run(until_ms=1800)
        results[frr] = (flow.stats.sent, meter.packets, ctrl)
    sent, delivered, ctrl = results[False]
    igp_loss = sent - delivered
    # IGP only: the loss window is the failure-detection window.
    rate_pps = 20e6 / (8 * 1048)
    expected = ctrl.dead_interval_ns / NS_PER_SEC * rate_pps
    assert 0.5 * expected < igp_loss < 2 * expected
    sent, delivered, ctrl = results[True]
    frr_loss = sent - delivered
    assert ctrl.bus.count("frr-fired", "A") == 1
    # FRR: only in-flight packets die; the A—B link holds ~µs of traffic.
    assert frr_loss <= 3
    assert frr_loss < igp_loss


def test_frr_plan_uses_surviving_ecmp_sibling_without_segments():
    net = Network(seed=1)
    for name in ("A", "B", "C", "D"):
        net.add_node(name, addr=f"fc00:{name.lower()}::1")
    net.add_link("A", "B")
    net.add_link("A", "C")
    net.add_link("B", "D")
    net.add_link("C", "D")
    ctrl = net.ctrl(frr=True)  # perfect diamond: ECMP everywhere
    net.run(until_ms=400)
    plan = ctrl.speakers["A"].frr.plans["eth0"]
    assert plan.rerouted > 0
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=500)
    route = net["A"].main_table().lookup(pton("fc00:d::1"))
    assert [nh.dev for nh in route.nexthops] == ["eth1"]


def test_short_flap_does_not_leave_stale_repair_routes():
    """A flap shorter than the dead interval changes no LSA — hellos just
    resume — so carrier-up itself must re-run SPF, or the seg6 repair
    stays in the FIB forever."""
    net, ctrl = square(frr=True)
    net.run(until_ms=400)
    net.fail_link("A", "B", at_ns=400 * NS_PER_MS)
    net.recover_link("A", "B", at_ns=430 * NS_PER_MS)  # < 200 ms dead interval
    net.run(until_ms=2000)
    assert ctrl.bus.count("adjacency-down") == 0  # the flap went undetected
    assert ctrl.bus.count("frr-fired", "A") == 1  # ... but the repair fired
    shown = net.config("A", "route show")
    assert not any("encap seg6 mode encap" in line for line in shown)
    route = [l for l in shown if l.startswith("fc00:d::1/128")]
    assert route == ["fc00:d::1/128 via fc00:b::1 dev eth0"]


def test_unreachable_prefix_after_repair_is_deleted_not_stale():
    """Double failure: the repair fires, then the prefix becomes
    unreachable.  The SPF deletion sweep must remove the seg6 repair —
    it is programmed state like any other — not leave traffic
    encapsulating into a dead link forever."""
    net, ctrl = square(frr=True)
    net.run(until_ms=400)
    net.fail_link("A", "B", at_ns=600 * NS_PER_MS)
    net.fail_link("A", "C", at_ns=650 * NS_PER_MS)  # before reconvergence
    net.run(until_ms=3000)
    shown = net.config("A", "route show")
    assert not any("encap seg6 mode encap" in line for line in shown)
    assert not any(line.startswith("fc00:d::1/128") for line in shown)


def test_frr_repair_targets_the_origin_routing_chose():
    """Anycast: the repair endpoint must be the instance SPF routed to,
    not the lexicographically smallest advertiser."""
    net, ctrl = square(frr=True)
    net.run(until_ms=400)
    speaker = ctrl.speakers["A"]
    # D is the routed origin for its own address; a fake earlier-sorting
    # advertiser must not hijack the repair endpoint.
    assert speaker.frr._origin_of("fc00:d::1/128") == "D"
    assert speaker.route_origins["fc00:d::1/128"] == "D"


def test_link_added_after_ctrl_gets_carrier_protection():
    """A link wired after net.ctrl() must deliver carrier events (and so
    FRR activation) exactly like the links that existed at arm time."""
    net = Network(seed=1)
    for name in ("A", "B", "C", "D"):
        net.add_node(name, addr=f"fc00:{name.lower()}::1")
    net.add_link("A", "B")
    net.add_link("B", "D")
    net.add_link("A", "C")
    costs = {("A", "eth0"): 5, ("B", "eth0"): 5, ("B", "eth1"): 5, ("D", "eth0"): 5}
    ctrl = net.ctrl(frr=True, costs=costs)
    net.add_link("C", "D")  # the detour leg arrives late
    net.run(until_ms=400)
    assert ctrl.converged()
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=800)
    assert ctrl.bus.count("carrier-down") == 2
    assert ctrl.bus.count("frr-fired", "A") == 1


def test_stop_before_first_run_sends_no_hellos():
    """stop() must also cancel the t=0 bootstrap hello one-shot."""
    net, ctrl = square()
    ctrl.stop()  # the start()-time LSA flood is already on the wire...
    sent = [
        link.a_to_b.stats.bytes_sent + link.b_to_a.stats.bytes_sent
        for link in net.links
    ]
    net.run(until_ms=500)
    # ... but nothing further goes out: no bootstrap hellos, no timers.
    assert [
        link.a_to_b.stats.bytes_sent + link.b_to_a.stats.bytes_sent
        for link in net.links
    ] == sent
    assert ctrl.bus.count("adjacency-up") == 0


def test_stop_quiesces_speakers_but_keeps_fib_state():
    net, ctrl = square(frr=True)
    net.run(until_ms=400)
    routes_before = net.config("A", "route show")
    ctrl.stop()
    events_before = len(ctrl.bus.events)
    net.fail_link("A", "B", at_ns=net.now_ns)  # nobody is listening
    net.run(until_ms=2000)
    assert len(ctrl.bus.events) == events_before  # no hellos, no carrier fan-out
    assert net.config("A", "route show") == routes_before  # FIB state remains
    assert all(not s.started and s._listener is None for s in ctrl.speakers.values())


# --- the Setup-2 acceptance scenario -----------------------------------------


def run_setup2_failover(frr: bool):
    setup = build_setup2()
    net = setup.net
    ctrl = net.ctrl(frr=frr, costs=SETUP2_IGP_COSTS)
    net.run(until_ms=500)
    assert ctrl.converged()
    meter = net.sink("S2")
    flow = net.trafgen("S1", dst="fc00:2::2", rate_bps=10e6, payload_size=1000)
    flow.start(at_ns=500 * NS_PER_MS, duration_ns=NS_PER_SEC)
    net.fail_link("A", "R", dev="dsl", at_ns=900 * NS_PER_MS)
    net.run(until_ms=3500)
    return flow, meter, ctrl


def test_setup2_core_link_failure_igp_only():
    flow, meter, ctrl = run_setup2_failover(frr=False)
    loss = flow.stats.sent - meter.packets
    rate_pps = 10e6 / (8 * 1048)
    window = ctrl.dead_interval_ns / NS_PER_SEC
    # Deliveries resumed: the flow ran 600 ms past the failure and most
    # of it arrived.
    assert meter.packets > 0.6 * flow.stats.sent
    # ... but the loss window matches the detection window.
    assert 0.5 * window * rate_pps < loss < 2.5 * window * rate_pps
    assert ctrl.bus.count("adjacency-down") >= 2


def test_setup2_core_link_failure_with_frr():
    flow, meter, ctrl = run_setup2_failover(frr=True)
    loss = flow.stats.sent - meter.packets
    assert ctrl.bus.count("frr-fired", "A") == 1
    # Post-failure loss is bounded by in-flight packets on the failed
    # link (~10 µs of propagation at 10 Mb/s: at most a couple).
    assert loss <= 3
    # And the repair detoured through R's decap SID, visible in the FIB
    # right after the carrier event (before reconvergence overwrites it).
    assert any(
        e.detail.get("repaired", 0) > 0 for e in ctrl.bus.of("frr-fired", "A")
    )
