"""Pure graph layer: LSDB freshness/two-way rules, ECMP SPF, TI-LFA."""

import pytest

from repro.ctrl.spf import (
    AdjacencyInfo,
    LinkStateDb,
    Lsa,
    run_spf,
    tilfa_repair,
)


def build_lsdb(links, prefixes=None):
    """links: (a, b, cost) or (a, b, cost_ab, cost_ba); devices are
    auto-named eth0, eth1, … per node in declaration order."""
    adjacencies: dict[str, list[AdjacencyInfo]] = {}
    dev_count: dict[str, int] = {}

    def next_dev(node):
        n = dev_count.get(node, 0)
        dev_count[node] = n + 1
        return f"eth{n}"

    for link in links:
        a, b, cost_ab = link[0], link[1], link[2]
        cost_ba = link[3] if len(link) > 3 else cost_ab
        dev_a, dev_b = next_dev(a), next_dev(b)
        adjacencies.setdefault(a, []).append(
            AdjacencyInfo(b, cost_ab, dev_a, f"fc00:{b.lower()}::1", dev_b)
        )
        adjacencies.setdefault(b, []).append(
            AdjacencyInfo(a, cost_ba, dev_b, f"fc00:{a.lower()}::1", dev_a)
        )
    lsdb = LinkStateDb()
    for index, node in enumerate(sorted(adjacencies), start=1):
        lsdb.insert(
            Lsa(
                origin=node,
                seq=1,
                adjacencies=tuple(adjacencies[node]),
                prefixes=tuple((prefixes or {}).get(node, (f"fc00:{node.lower()}::1/128",))),
                sid=f"fcff:{index:x}::e",
                dt6_sid=f"fcff:{index:x}::d",
            )
        )
    return lsdb


def test_insert_freshness_rule():
    lsdb = LinkStateDb()
    assert lsdb.insert(Lsa("A", seq=2))
    assert not lsdb.insert(Lsa("A", seq=2))  # same seq: stale
    assert not lsdb.insert(Lsa("A", seq=1))  # older: stale
    assert lsdb.insert(Lsa("A", seq=3))
    assert lsdb.get("A").seq == 3


def test_two_way_check_drops_half_dead_adjacency():
    lsdb = LinkStateDb()
    lsdb.insert(
        Lsa("A", 1, (AdjacencyInfo("B", 10, "eth0", "fc00:b::1", "eth0"),))
    )
    lsdb.insert(Lsa("B", 1, ()))  # B does not hear A
    assert lsdb.graph()["A"] == []
    result = run_spf(lsdb, "A")
    assert not result.reachable("B")


def test_wire_round_trip():
    lsdb = build_lsdb([("A", "B", 10)])
    lsa = lsdb.get("A")
    assert Lsa.from_wire(lsa.to_wire()) == lsa


def test_spf_picks_cheapest_path():
    lsdb = build_lsdb([("A", "B", 10), ("B", "C", 10), ("A", "C", 30)])
    result = run_spf(lsdb, "A")
    assert result.dist["C"] == 20
    assert [h.neighbor for h in result.first_hops["C"]] == ["B"]
    assert result.one_path("C") == ["A", "B", "C"]


def test_spf_ecmp_keeps_all_equal_cost_first_hops():
    lsdb = build_lsdb(
        [("A", "B", 10), ("A", "C", 10), ("B", "D", 10), ("C", "D", 10)]
    )
    result = run_spf(lsdb, "A")
    assert result.dist["D"] == 20
    assert sorted(h.neighbor for h in result.first_hops["D"]) == ["B", "C"]


def test_spf_parallel_links_ecmp_by_device():
    lsdb = build_lsdb([("A", "B", 10), ("A", "B", 10)])
    result = run_spf(lsdb, "A")
    assert len(result.first_hops["B"]) == 2
    assert {h.dev for h in result.first_hops["B"]} == {"eth0", "eth1"}


def test_spf_exclusion_is_per_adjacency_not_per_pair():
    lsdb = build_lsdb([("A", "B", 10), ("A", "B", 20)])
    result = run_spf(lsdb, "A", exclude=frozenset({("A", "eth0")}))
    assert result.dist["B"] == 20  # the parallel sibling survives
    assert result.first_hops["B"][0].dev == "eth1"


def test_dag_edges_cover_every_ecmp_path():
    lsdb = build_lsdb(
        [("A", "B", 10), ("A", "C", 10), ("B", "D", 10), ("C", "D", 10)]
    )
    edges = run_spf(lsdb, "A").dag_edges_to("D")
    # Both diamond arms appear, identified by (node, egress dev).
    assert ("A", "eth0") in edges and ("A", "eth1") in edges


def test_tilfa_simple_detour():
    # A—B—D primary (cost 10+10), A—C—D detour (30+30): protect A—B.
    lsdb = build_lsdb(
        [("A", "B", 10), ("B", "D", 10), ("A", "C", 30), ("C", "D", 30)]
    )
    repair = tilfa_repair(lsdb, "A", "D", "eth0")
    assert repair is not None
    # C's pre-failure shortest path to D avoids A—B, so C releases.
    assert repair.release_points == ("C",)
    assert repair.first_hop.neighbor == "C"


def test_tilfa_parallel_link_uses_sibling():
    lsdb = build_lsdb([("A", "B", 10), ("A", "B", 20), ("B", "C", 10)])
    repair = tilfa_repair(lsdb, "A", "C", "eth0")
    assert repair is not None
    assert repair.release_points == ("B",)
    assert repair.first_hop.dev == "eth1"  # the surviving twin


def test_tilfa_needs_multiple_segments_on_ring():
    # 5-ring with a heavy shortcut nowhere: protecting A—B for dest B
    # forces the repair the long way round; intermediate nodes' own
    # shortest paths to B would U-turn over the failed link, so more
    # than one release point is required.
    lsdb = build_lsdb(
        [("A", "B", 10), ("B", "C", 10), ("C", "D", 10), ("D", "E", 10), ("E", "A", 10)]
    )
    repair = tilfa_repair(lsdb, "A", "B", "eth0")
    assert repair is not None
    assert repair.first_hop.neighbor == "E"
    # E's own shortest path to B U-turns over A—B, so E cannot be the
    # final release point: a second segment (C) is required, from which
    # normal routing reaches B clean.
    assert repair.release_points == ("E", "C")


def test_tilfa_unprotectable_when_partitioned():
    lsdb = build_lsdb([("A", "B", 10), ("B", "C", 10)])
    assert tilfa_repair(lsdb, "A", "C", "eth0") is None


@pytest.mark.parametrize("protect_dev", ["eth0", "eth1"])
def test_tilfa_repair_path_actually_avoids_failed_adjacency(protect_dev):
    lsdb = build_lsdb(
        [("A", "B", 10), ("A", "C", 10), ("B", "D", 10), ("C", "D", 10)]
    )
    repair = tilfa_repair(lsdb, "A", "D", protect_dev)
    assert repair is not None
    # The diamond's other arm is the release point.
    expected = "C" if protect_dev == "eth0" else "B"
    assert repair.release_points == (expected,)
