"""IGP speakers end to end: hellos over real links, flooding, SPF
programming through the textual plane, dead-interval detection."""

import pytest

from repro.lab import Network
from repro.net import pton
from repro.sim.scheduler import NS_PER_MS


def triangle(seed=1, **ctrl_kwargs):
    net = Network(seed=seed)
    for name, addr in (("A", "fc00:a::1"), ("B", "fc00:b::1"), ("C", "fc00:c::1")):
        net.add_node(name, addr=addr)
    net.add_link("A", "B")
    net.add_link("B", "C")
    net.add_link("A", "C")
    return net, net.ctrl(**ctrl_kwargs)


def test_converges_and_programs_routes_through_the_plane():
    net, ctrl = triangle()
    net.run(until_ms=500)
    assert ctrl.converged()
    # Every node can resolve every other node's address.
    for src in "ABC":
        for dst in "ABC":
            if src == dst:
                continue
            route = net[src].main_table().lookup(pton(f"fc00:{dst.lower()}::1"))
            assert route is not None and not route.local, (src, dst)
    # Converged state is textual-plane state: the dump replays verbatim
    # onto a fresh node.
    shown = net.config("A", "route show")
    assert any("fc00:b::1/128 via fc00:b::1" in line for line in shown)
    replica = Network()
    replica.add_node("A2", addr=(), devices=("eth0", "eth1"))
    for line in shown:
        replica.config("A2", f"route add {line}")
    assert replica.config("A2", "route show") == shown


def test_sids_installed_and_propagated():
    net, ctrl = triangle()
    net.run(until_ms=500)
    # Each node holds its own SIDs as seg6local actions...
    own = net.config("A", "route show")
    assert any("encap seg6local action End.DT6 table 254" in l for l in own)
    assert any(
        "encap seg6local action End" in l and "DT6" not in l for l in own
    )
    # ... and routes to everyone else's.
    assert net["A"].main_table().lookup(pton(ctrl.sids["C"])) is not None


def test_spf_runs_coalesce():
    net, ctrl = triangle(spf_delay_ns=20 * NS_PER_MS)
    net.run(until_ms=500)
    # Six adjacency-ups and six LSAs land in far fewer SPF runs.
    assert ctrl.bus.count("adjacency-up") == 6
    assert ctrl.bus.count("spf-run") <= 9


def test_dead_interval_detection_and_reconvergence():
    net, ctrl = triangle()
    net.run(until_ms=500)
    before = net["A"].main_table().lookup(pton("fc00:b::1"))
    assert before.nexthops[0].dev == "eth0"  # direct A—B
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=1500)
    assert ctrl.bus.count("adjacency-down") == 2  # both ends noticed
    after = net["A"].main_table().lookup(pton("fc00:b::1"))
    assert after.nexthops[0].dev == "eth1"  # detour via C
    down = ctrl.bus.last("adjacency-down", "A")
    # Detection cost ≈ the dead interval after the failure instant.
    assert down.time_ns - 500 * NS_PER_MS <= ctrl.dead_interval_ns + 2 * ctrl.hello_interval_ns


def test_recovery_restores_direct_route():
    net, ctrl = triangle()
    net.run(until_ms=500)
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=1500)
    net.recover_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=2500)
    assert ctrl.converged()
    route = net["A"].main_table().lookup(pton("fc00:b::1"))
    assert route.nexthops[0].dev == "eth0"


def test_withdraw_on_partition():
    net = Network(seed=1)
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B")
    ctrl = net.ctrl()
    net.run(until_ms=500)
    assert net["A"].main_table().lookup(pton("fc00:b::1")) is not None
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=2000)
    # B is unreachable: its prefixes are withdrawn, not left dangling.
    assert net["A"].main_table().lookup(pton("fc00:b::1")) is None


def test_costs_steer_path_selection():
    net = Network(seed=1)
    for name, addr in (("A", "fc00:a::1"), ("B", "fc00:b::1"), ("C", "fc00:c::1")):
        net.add_node(name, addr=addr)
    net.add_link("A", "B")  # A.eth0
    net.add_link("B", "C")
    net.add_link("A", "C")  # A.eth1
    net.ctrl(costs={("A", "eth0"): 100, ("B", "eth0"): 100})
    net.run(until_ms=500)
    # The expensive direct link loses to the two-hop detour via C.
    route = net["A"].main_table().lookup(pton("fc00:b::1"))
    assert route.nexthops[0].dev == "eth1"


def test_ecmp_programmed_as_multipath_route():
    net = Network(seed=1)
    for name in ("A", "B", "C", "D"):
        net.add_node(name, addr=f"fc00:{name.lower()}::1")
    net.add_link("A", "B")
    net.add_link("A", "C")
    net.add_link("B", "D")
    net.add_link("C", "D")
    net.ctrl()
    net.run(until_ms=500)
    route = net["A"].main_table().lookup(pton("fc00:d::1"))
    assert len(route.nexthops) == 2
    shown = [l for l in net.config("A", "route show") if l.startswith("fc00:d::1")]
    assert shown and shown[0].count("nexthop") == 2


def test_advertise_extra_prefixes():
    net = Network(seed=1)
    net.add_node("A", addr="fc00:a::1")
    net.add_node("B", addr="fc00:b::1")
    net.add_link("A", "B")
    net.ctrl(advertise={"B": ("fc00:2::/64",)})
    net.run(until_ms=500)
    assert net["A"].main_table().lookup(pton("fc00:2::42")) is not None


def test_second_ctrl_rejected():
    net, _ctrl = triangle()
    with pytest.raises(RuntimeError, match="already has a control plane"):
        net.ctrl()


def test_event_bus_log_is_queryable():
    net, ctrl = triangle()
    net.run(until_ms=500)
    seen = []
    ctrl.bus.subscribe("carrier-down", lambda e: seen.append(e))
    net.fail_link("A", "B", at_ns=net.now_ns)
    net.run(until_ms=600)
    assert len(seen) == 2 and {e.node for e in seen} == {"A", "B"}
    assert ctrl.bus.count("carrier-down", "A") == 1
    assert "carrier-down" in ctrl.bus.dump()
