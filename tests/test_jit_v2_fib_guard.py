"""Batch-resident eBPF vs concurrent FIB updates — the re-landing guard.

The batch-resident fast path groups consecutive same-destination packets
behind one armed handler and one route resolution.  That resolution can
go stale *mid-group*: an eBPF program (through a helper) or its
continuation may mutate the FIB, and the packets still queued behind the
group's route must then see the new table — exactly as they would had
each been resolved individually.

The datapath defends this with a generation check at every group
boundary (``repro.net.node.FIB_GENERATION_GUARD``): after each packet
the main table's generation is compared against its value at group
formation, and a mismatch flushes the group so the caller re-resolves
the remainder.  These tests pin both sides of the property:

* guard **on** (the default) — a helper-made route replacement takes
  effect from the very next packet, matching the scalar datapath;
* guard **off** — the group demonstrably keeps executing the stale
  handler, which is the hazard that reverted the first landing of the
  batch-resident path.
"""

from __future__ import annotations

import pytest

import repro.net.node as node_mod
from repro.bench.harness import FUNC_SEGMENT, copy_batch, make_router
from repro.ebpf import Program
from repro.ebpf.helpers import HELPERS_BY_ID, register_helper
from repro.ebpf.jit import clear_handler_cache, handler_cache_stats
from repro.net import EndBPF
from repro.sim.trafgen import batch_srv6_udp

SINK_ADDR = "fc00:2::2"
BATCH = 16

# Test-only helper: invokes a host-side callback installed by the test.
# Id 2000 lives outside every hook whitelist, so programs using it must
# load with ``allowed_helpers=None`` — it cannot leak into the datapath
# programs under test elsewhere.
_FLIP: dict = {}

if 2000 not in HELPERS_BY_ID:

    @register_helper(2000, "test_fib_flip", [("ctx",)])
    def _test_fib_flip(hctx, ctx_addr: int) -> int:
        callback = _FLIP.pop("fn", None)
        if callback is not None:
            callback(hctx.node)
        return 0


# Stamps mark=1, then gives the host a chance to mutate the FIB while
# the batch is mid-flight.
MARK1_AND_FLIP_ASM = """
    mov r2, 1
    stxw [r1+8], r2                ; ctx->mark = 1
    call test_fib_flip
    mov r0, 0                      ; BPF_OK
    exit
"""

# The replacement route's program: stamps mark=2.
MARK2_ASM = """
    mov r2, 2
    stxw [r1+8], r2                ; ctx->mark = 2
    mov r0, 0                      ; BPF_OK
    exit
"""


def _build():
    """Router with an End.BPF segment whose program can flip the FIB."""
    clear_handler_cache()
    _FLIP.clear()
    node = make_router()
    prog_a = Program(MARK1_AND_FLIP_ASM, name="mark1_flip", allowed_helpers=None)
    prog_b = Program(MARK2_ASM, name="mark2", allowed_helpers=None)
    node.add_route(f"{FUNC_SEGMENT}/128", encap=EndBPF(prog_a))

    def flip(n):
        # Same-prefix add replaces the route and bumps the generation —
        # the mid-batch route update of the revert's hazard scenario.
        n.add_route(f"{FUNC_SEGMENT}/128", encap=EndBPF(prog_b))

    _FLIP["fn"] = flip
    return node


def _drive(node) -> list[int]:
    templates = batch_srv6_udp(
        "fc00:1::1", [FUNC_SEGMENT, SINK_ADDR], BATCH, payload_size=32
    )
    node.receive_batch(copy_batch(templates), node.devices["eth0"])
    out = node.devices["eth1"].tx_buffer
    assert len(out) == BATCH, "packets were dropped"
    return [p.mark for p in out]


def test_guard_on_flushes_group_and_matches_scalar():
    """A mid-group route replacement takes effect from the next packet."""
    marks = _drive(_build())
    # Packet 1 ran the old program (mark 1) and flipped the route; every
    # later packet must already see the replacement (mark 2) — identical
    # to resolving each packet individually.
    assert marks == [1] + [2] * (BATCH - 1)
    stats = handler_cache_stats()
    assert stats["bpf_groups"] >= 2  # the flushed group plus its retry
    assert stats["bpf_group_flushes"] >= 1


def test_guard_on_matches_batch_of_one():
    """Scalar reference: one-packet batches resolve every route fresh."""
    node = _build()
    templates = batch_srv6_udp(
        "fc00:1::1", [FUNC_SEGMENT, SINK_ADDR], BATCH, payload_size=32
    )
    dev = node.devices["eth0"]
    for pkt in copy_batch(templates):
        node.receive_batch([pkt], dev)
    marks = [p.mark for p in node.devices["eth1"].tx_buffer]
    assert marks == [1] + [2] * (BATCH - 1)


def test_guard_off_runs_stale_route(monkeypatch):
    """Disabling the guard reproduces the PR-4 hazard: stale execution."""
    monkeypatch.setattr(node_mod, "FIB_GENERATION_GUARD", False)
    marks = _drive(_build())
    # The group never notices the replacement: every packet of the batch
    # still runs the old program.  This divergence from the scalar result
    # is exactly what the generation guard exists to prevent.
    assert marks == [1] * BATCH
    assert handler_cache_stats()["bpf_group_flushes"] == 0
