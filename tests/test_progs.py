"""The paper's program library: functional behaviour and size claims."""

import struct

import pytest

from repro.ebpf import ArrayMap, PerfEventArrayMap
from repro.net import (
    BpfLwt,
    EndBPF,
    Node,
    Packet,
    make_srv6_udp_packet,
    make_udp_packet,
    pton,
)
from repro.progs import (
    DM_EVENT_SIZE,
    DmEvent,
    OampEvent,
    add_tlv_prog,
    dm_config_value,
    dm_encap_prog,
    end_dm_prog,
    end_oamp_prog,
    end_prog,
    end_t_prog,
    tag_increment_prog,
    wrr_config_value,
    wrr_prog,
    wrr_state_counters,
)

SEG = "fc00:e::100"


def fresh_router():
    node = Node("R")
    node.add_device("eth0")
    node.add_device("eth1")
    node.add_address("fc00:e::1")
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1")
    return node


def srv6_pkt(**kwargs):
    return make_srv6_udp_packet("fc00:1::1", [SEG, "fc00:2::2"], 1111, 2222, b"p" * 64, **kwargs)


def push(node, pkt):
    node.receive(pkt, node.devices["eth0"])
    buf = node.devices["eth1"].tx_buffer
    return buf.pop() if buf else None


# --- §3.2 microbenchmark programs --------------------------------------------


@pytest.mark.parametrize("jit", [True, False])
def test_end_prog_behaves_as_end(jit):
    node = fresh_router()
    node.add_route(f"{SEG}/128", encap=EndBPF(end_prog(jit=jit)))
    out = push(node, srv6_pkt())
    assert out is not None
    assert out.dst == pton("fc00:2::2")
    srh, _ = out.srh()
    assert srh.segments_left == 0


@pytest.mark.parametrize("jit", [True, False])
def test_end_t_prog_redirects_via_table(jit):
    node = fresh_router()
    node.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1", table_id=254)
    node.add_route(f"{SEG}/128", encap=EndBPF(end_t_prog(table_id=254, jit=jit)))
    out = push(node, srv6_pkt())
    assert out is not None
    assert out.dst == pton("fc00:2::2")


@pytest.mark.parametrize("jit", [True, False])
def test_tag_increment_prog(jit):
    node = fresh_router()
    node.add_route(f"{SEG}/128", encap=EndBPF(tag_increment_prog(jit=jit)))
    out = push(node, srv6_pkt(tag=0x00FF))
    srh, _ = out.srh()
    assert srh.tag == 0x0100


def test_tag_increment_wraps_16_bits():
    node = fresh_router()
    node.add_route(f"{SEG}/128", encap=EndBPF(tag_increment_prog()))
    out = push(node, srv6_pkt(tag=0xFFFF))
    srh, _ = out.srh()
    assert srh.tag == 0


@pytest.mark.parametrize("jit", [True, False])
def test_add_tlv_prog(jit):
    node = fresh_router()
    node.add_route(f"{SEG}/128", encap=EndBPF(add_tlv_prog(jit=jit)))
    pkt = srv6_pkt()
    original_len = len(pkt.data)
    out = push(node, pkt)
    assert len(out.data) == original_len + 8
    srh, _ = out.srh()
    tlv = srh.find_tlv(10)
    assert tlv is not None
    assert len(tlv.value) == 6
    # The packet is still structurally valid end to end.
    assert out.udp_payload() == b"p" * 64


def test_add_tlv_passes_through_non_srv6():
    node = fresh_router()
    node.add_route("fc00:9::100/128", encap=EndBPF(add_tlv_prog()))
    # End.BPF refuses packets without an SRH before the program even runs.
    pkt = make_udp_packet("fc00:1::1", "fc00:9::100", 1, 2, b"x")
    assert push(node, pkt) is None


# --- §4.1 DM programs -------------------------------------------------------------


def test_dm_encap_prog_builds_valid_probe():
    config = ArrayMap("dm_config", value_size=40, max_entries=1)
    config.update(
        b"\x00" * 4, dm_config_value("fc00:3::dd", "fc00:c::1", 9000, 0, 1)
    )
    node = fresh_router()
    node.add_route("fc00:3::/64", via="fc00:2::1", dev="eth1")
    node.add_route(
        "fc00:2::/64", via="fc00:2::1", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    out = push(node, make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x"))
    assert out is not None
    assert out.dst == pton("fc00:3::dd")
    srh, _ = out.srh()
    assert srh.segments_left == 1
    assert srh.final_segment == pton("fc00:2::2")
    dm = srh.find_tlv(0x80)
    assert dm is not None and len(dm.value) == 9
    ctrl = srh.find_tlv(0x81)
    assert ctrl.value[:16] == pton("fc00:c::1")
    assert struct.unpack(">H", ctrl.value[16:18])[0] == 9000


def test_end_dm_prog_emits_event_and_decaps():
    events = PerfEventArrayMap("dm_ev")
    config = ArrayMap("dm_cfg2", value_size=40, max_entries=1)
    config.update(b"\x00" * 4, dm_config_value("fc00:e::dd", "fc00:c::1", 9000, 0, 1))

    # Head-end encapsulates...
    head = fresh_router()
    head.add_route("fc00:e::dd/128", via="fc00:2::1", dev="eth1")
    head.add_route(
        "fc00:2::/64", via="fc00:2::1", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    probe = push(head, make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x"))

    # ... tail-end runs End.DM.
    clock = [0]
    tail = Node("T", clock_ns=lambda: clock[0])
    tail.add_device("eth0")
    tail.add_device("eth1")
    tail.add_address("fc00:e::2")
    tail.add_route("fc00:2::/64", via="fc00:2::1", dev="eth1")
    tail.add_route("fc00:e::dd/128", encap=EndBPF(end_dm_prog(events)))
    clock[0] = 777_000
    tail.receive(probe, tail.devices["eth0"])
    out = tail.devices["eth1"].tx_buffer.pop()
    assert out.srh() is None  # decapsulated
    assert out.dst == pton("fc00:2::2")

    record = events.ring(0).drain()
    assert len(record) == 1
    event = DmEvent.parse(record[0])
    assert event.rx_timestamp_ns == 777_000
    assert event.controller == pton("fc00:c::1")
    assert event.port == 9000
    assert event.kind == 0
    assert event.delay_ns == 777_000 - event.tx_timestamp_ns


def test_end_dm_twd_probe_forwards_to_querier():
    events = PerfEventArrayMap("dm_ev2")
    config = ArrayMap("dm_cfg3", value_size=40, max_entries=1)
    config.update(b"\x00" * 4, dm_config_value("fc00:e::dd", "fc00:c::1", 9000, 1, 1))
    head = fresh_router()
    head.add_route("fc00:e::dd/128", via="fc00:2::1", dev="eth1")
    head.add_route(
        "fc00:2::/64", via="fc00:2::1", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    probe = push(head, make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x"))

    tail = fresh_router()
    tail.add_route("fc00:e::dd/128", encap=EndBPF(end_dm_prog(events)))
    out = push(tail, probe)
    assert out is not None
    assert out.srh() is not None  # TWD: not decapsulated
    event = DmEvent.parse(events.ring(0).drain()[0])
    assert event.kind == 1


def test_end_dm_passes_non_probe_srv6():
    events = PerfEventArrayMap("dm_ev3")
    tail = fresh_router()
    tail.add_route(f"{SEG}/128", encap=EndBPF(end_dm_prog(events)))
    out = push(tail, srv6_pkt())
    assert out is not None  # behaves as plain End for non-probes
    assert events.ring(0).pushed == 0


# --- §4.2 WRR ----------------------------------------------------------------------


def test_wrr_prog_round_robin_pattern():
    config = ArrayMap("wrr_c", value_size=40, max_entries=1)
    state = ArrayMap("wrr_s", value_size=16, max_entries=1)
    config.update(b"\x00" * 4, wrr_config_value("fc00:7::d0", "fc00:7::d1", 2, 1))
    node = fresh_router()
    node.add_route("fc00:7::d0/128", via="fc00:2::1", dev="eth1")
    node.add_route("fc00:7::d1/128", via="fc00:2::1", dev="eth1")
    node.add_route(
        "fc00:2::/64", encap=BpfLwt(prog_out=wrr_prog(config, state))
    )
    dsts = []
    for i in range(9):
        out = push(node, make_udp_packet("fc00:1::1", "fc00:2::2", 1, 2, b"x"))
        dsts.append(out.dst)
    count0 = dsts.count(pton("fc00:7::d0"))
    count1 = dsts.count(pton("fc00:7::d1"))
    assert count0 == 6 and count1 == 3
    c0, c1, pkts0, pkts1 = wrr_state_counters(state)
    assert (pkts0, pkts1) == (6, 3)


def test_wrr_encapsulated_packet_structure():
    config = ArrayMap("wrr_c2", value_size=40, max_entries=1)
    state = ArrayMap("wrr_s2", value_size=16, max_entries=1)
    config.update(b"\x00" * 4, wrr_config_value("fc00:7::d0", "fc00:7::d1", 1, 1))
    node = fresh_router()
    node.add_route("fc00:7::d0/128", via="fc00:2::1", dev="eth1")
    node.add_route("fc00:7::d1/128", via="fc00:2::1", dev="eth1")
    node.add_route("fc00:2::/64", encap=BpfLwt(prog_out=wrr_prog(config, state)))
    out = push(node, make_udp_packet("fc00:1::1", "fc00:2::2", 5, 6, b"inner"))
    srh, _ = out.srh()
    assert srh.segments_left == 0  # direct to the decap segment
    from repro.net import decap_outer

    inner = Packet(decap_outer(bytes(out.data)))
    assert inner.udp_payload() == b"inner"
    assert inner.dst == pton("fc00:2::2")


# --- §4.3 OAMP ---------------------------------------------------------------------


def test_end_oamp_reports_and_consumes_probe():
    from repro.net import Nexthop, make_srh, push_outer_encap
    from repro.net.srh import make_controller_tlv
    from repro.net.udp import build_udp
    from repro.net.ipv6 import IPv6Header

    events = PerfEventArrayMap("oamp_ev")
    node = fresh_router()
    node.add_route(
        "fc00:9::/64",
        nexthops=[Nexthop(via="fc00::a", dev="eth1"), Nexthop(via="fc00::b", dev="eth1")],
    )
    node.add_route(f"{SEG}/128", encap=EndBPF(end_oamp_prog(events)))

    me = pton("fc00:1::1")
    target = pton("fc00:9::9")
    inner = build_udp(me, target, 5, 6, b"oamp")
    header = IPv6Header(src=me, dst=target, next_header=17, payload_length=len(inner))
    srh = make_srh([SEG, target], next_header=41, tlvs=[make_controller_tlv(me, 8892)])
    probe = Packet(push_outer_encap(header.pack() + inner, me, srh))

    out = push(node, probe)
    assert out is None  # probe consumed (BPF_DROP after reporting)
    event = OampEvent.parse(events.ring(0).drain()[0])
    assert event.count == 2
    assert event.prober == me
    assert event.target == target
    assert event.port == 8892
    assert set(event.nexthops) == {pton("fc00::a"), pton("fc00::b")}


def test_end_oamp_passes_non_probe():
    events = PerfEventArrayMap("oamp_ev2")
    node = fresh_router()
    node.add_route(f"{SEG}/128", encap=EndBPF(end_oamp_prog(events)))
    out = push(node, srv6_pkt())
    assert out is not None
    assert events.ring(0).pushed == 0


# --- SLOC sanity (the paper's size claims, §3.2/§4) -------------------------------


def insn_count(prog) -> int:
    return prog.num_insns


def test_program_sizes_track_paper_claims():
    """Relative program sizes follow the paper's SLOC ordering:
    End (1) < End.T (4) < Tag++ (~50) <= Add TLV (~60); End.OAMP ~60;
    DM encap is the largest data-path program (130 C SLOC)."""
    end = insn_count(end_prog())
    end_t = insn_count(end_t_prog())
    tag = insn_count(tag_increment_prog())
    add_tlv = insn_count(add_tlv_prog())
    dm = insn_count(dm_encap_prog(ArrayMap("szc", 40, 1)))
    oamp = insn_count(end_oamp_prog(PerfEventArrayMap("sze")))
    wrr = insn_count(wrr_prog(ArrayMap("szc2", 40, 1), ArrayMap("szs2", 16, 1)))

    assert end < end_t < tag < add_tlv
    assert dm == max(end, end_t, tag, add_tlv, dm)
    assert end <= 3
    assert 40 <= dm <= 90  # the 130-SLOC C program, in eBPF instructions
    assert 30 <= wrr <= 90
    assert 30 <= oamp <= 90
