"""Figure 3 — "Impact of both BPF programs on the forwarding performances".

Regenerates the four bars of §4.1: the head-end transit sampler (pktgen
plain-IPv6 workload) and the End.DM endpoint (trafgen DM-probe workload),
each at probing ratios 1:10000 and 1:100, normalised against pure IPv6
forwarding.  Paper shape: everything stays ≥ ~94 %; the transit sampler
costs ~5 %; End.DM at 1:10000 is indistinguishable from plain forwarding.

In this substrate the *sampling-ratio sensitivity* is the preserved
property: moving from 1:10000 to 1:100 must cost almost nothing at the
head-end (the non-sampled path does one map lookup plus one random draw
per packet regardless), and the End.DM node's cost must scale with the
fraction of packets that actually are probes.
"""

import pytest

from repro.bench import BATCH_SIZE, ResultRegistry, copy_batch, drive_batch, make_router
from repro.ebpf import ArrayMap, PerfEventArrayMap
from repro.net import BpfLwt, EndBPF, Packet
from repro.progs import dm_config_value, dm_encap_prog, end_dm_prog
from repro.sim.trafgen import batch_udp

REGISTRY = ResultRegistry("Figure 3 — delay monitoring overhead")

PAPER = {
    "baseline_ipv6": 1.00,
    "encap_1_10000": 0.95,
    "encap_1_100": 0.95,
    "end_dm_1_10000": 1.00,
    "end_dm_1_100": 0.97,
}

DM_SEGMENT = "fc00:3::dd"


def make_head(ratio: int):
    """Head-end router with the sampler on the sink route."""
    node = make_router()
    config = ArrayMap(f"dmb_cfg_{ratio}_{id(object())}", value_size=40, max_entries=1)
    config.update(
        b"\x00" * 4, dm_config_value(DM_SEGMENT, "fc00:c::1", 9000, 0, ratio)
    )
    node.add_route(DM_SEGMENT + "/128", via="fc00:2::2", dev="eth1")
    node.add_route(
        "fc00:2::/64", via="fc00:2::2", dev="eth1",
        encap=BpfLwt(prog_out=dm_encap_prog(config)),
    )
    return node


def make_tail(ratio: int):
    """End.DM router plus a matching traffic mix (1/ratio probes)."""
    head = make_head(1)  # encapsulate every packet to harvest probe bytes
    probe_template = None
    head.receive(
        batch_udp("fc00:1::1", "fc00:2::2", 1, payload_size=64)[0],
        head.devices["eth0"],
    )
    probe_template = head.devices["eth1"].tx_buffer.pop()

    node = make_router()
    events = PerfEventArrayMap(f"dmb_ev_{ratio}_{id(object())}", max_entries=1)
    node.add_route(DM_SEGMENT + "/128", encap=EndBPF(end_dm_prog(events)))

    plain = batch_udp("fc00:1::1", "fc00:2::2", BATCH_SIZE, payload_size=64)
    templates = []
    for i, pkt in enumerate(plain):
        if ratio and i % ratio == 0:
            templates.append(Packet(bytes(probe_template.data)))
        else:
            templates.append(pkt)
    return node, templates, events


@pytest.mark.parametrize("name", ["baseline_ipv6"])
def test_baseline_forwarding(benchmark, name):
    """The paper's 610 kpps raw-forwarding reference, on our substrate."""
    node = make_router()
    templates = batch_udp("fc00:1::1", "fc00:2::2", BATCH_SIZE, payload_size=64)

    def setup():
        return (node, copy_batch(templates)), {}

    benchmark.pedantic(drive_batch, setup=setup, rounds=8, warmup_rounds=2)
    pps = REGISTRY.record(name, benchmark.stats.stats.min)
    benchmark.extra_info["kpps"] = round(pps / 1e3, 1)


@pytest.mark.parametrize("ratio,name", [(10_000, "encap_1_10000"), (100, "encap_1_100")])
def test_transit_sampler(benchmark, ratio, name):
    node = make_head(ratio)
    templates = batch_udp("fc00:1::1", "fc00:2::2", BATCH_SIZE, payload_size=64)

    def setup():
        return (node, copy_batch(templates)), {}

    forwarded = drive_batch(node, copy_batch(templates))
    assert forwarded == BATCH_SIZE

    benchmark.pedantic(drive_batch, setup=setup, rounds=8, warmup_rounds=2)
    pps = REGISTRY.record(name, benchmark.stats.stats.min)
    benchmark.extra_info["kpps"] = round(pps / 1e3, 1)


@pytest.mark.parametrize("ratio,name", [(10_000, "end_dm_1_10000"), (100, "end_dm_1_100")])
def test_end_dm_node(benchmark, ratio, name):
    node, templates, events = make_tail(ratio)

    def setup():
        return (node, copy_batch(templates)), {}

    benchmark.pedantic(drive_batch, setup=setup, rounds=8, warmup_rounds=2)
    pps = REGISTRY.record(name, benchmark.stats.stats.min)
    benchmark.extra_info["kpps"] = round(pps / 1e3, 1)
    # Probes were really processed (events per batch = probes in mix).
    assert events.ring(0).pushed > 0 or ratio > BATCH_SIZE


def test_fig3_trace_oam_crosscheck():
    """Two independent delay observers must agree exactly.

    The same seeded run carries both the paper's in-band OAM pipeline
    (DM probe TLVs stamped at the head, End.DM + daemon + collector at
    the tail) and ``net.trace()``.  At ratio 1 every delivered packet
    was probed, so the collector's (tx, rx) pairs must equal the trace
    records' head ``lwt_out`` instant and tail ``rx`` instant — same
    nanoseconds, packet for packet.
    """
    import json as _json
    import os as _os

    from repro.lab import Network
    from repro.sim.scheduler import NS_PER_MS
    from repro.usecases import deploy_owd_monitoring

    net = Network(seed=13)
    net.add_node("S", addr="fc00:a::1")
    net.add_node("R", addr="fc00:b::1")
    net.add_node("T", addr="fc00:d::1")
    net.add_node("C", addr="fc00:c::1")
    net.add_link("S", "R", rate_bps=1e9, delay_ns=3_000_000)
    net.add_link("R", "T", rate_bps=1e9, delay_ns=1_000_000)
    net.add_link("T", "C", rate_bps=1e9, delay_ns=500_000)
    handles = deploy_owd_monitoring(
        head=net.node("S"),
        tail=net.node("T"),
        controller_node=net.node("C"),
        monitored_prefix="fc00:d::/64",
        dm_segment="fc00:d::dd",
        controller_addr="fc00:c::1",
        ratio=1,  # probe every packet: trace records align 1:1
        via="fc00:b::1",
        dev="eth0",
    )
    net.config("S", "route add fc00:d::dd/128 via fc00:b::1 dev eth0")
    net.config("R", "route add fc00:d::/64 via fc00:d::1 dev eth1")
    net.config("R", "route add fc00:d::dd/128 via fc00:d::1 dev eth1")
    net.config("T", "route add fc00:c::/64 via fc00:c::1 dev eth1")
    handles.daemon.start(net.scheduler, interval_ns=NS_PER_MS)

    tracer = net.trace(sample=1)
    flow = net.trafgen("S", dst="fc00:d::1", rate_bps=10e6, payload_size=300)
    net.sink("T")
    flow.start(at_ns=0, duration_ns=40 * NS_PER_MS)
    net.run(until_ns=80 * NS_PER_MS)

    samples = handles.collector.samples
    records = [r for r in tracer.sorted_records() if r["dst"] == "T"]
    assert len(samples) > 10, "scenario must collect OAM reports"
    assert len(samples) <= len(records)

    trace_pairs = []
    for rec in records:
        tx = [
            s
            for s, _e, cat, where, detail in rec["spans"]
            if cat == "ebpf" and where == "S" and detail.startswith("lwt_out/")
        ]
        rx = [
            s
            for s, _e, cat, where, _d in rec["spans"]
            if cat == "rx" and where == "T"
        ]
        assert len(tx) == 1 and len(rx) == 1
        trace_pairs.append((tx[0], rx[0]))

    # Elementwise: probes, events, reports and traces are all FIFO on
    # this path, so sample k is trace record k (the daemon may lag on
    # the final packets — compare the collected prefix).
    for sample, (tx_ns, rx_ns) in zip(samples, trace_pairs):
        assert sample.tx_timestamp_ns == tx_ns
        assert sample.rx_timestamp_ns == rx_ns
        assert sample.delay_ns == rx_ns - tx_ns

    oam_mean = handles.collector.mean_delay_ns()
    trace_mean = sum(rx - tx for tx, rx in trace_pairs) / len(trace_pairs)
    out_path = _os.environ.get(
        "REPRO_FIG3_CROSSCHECK_JSON", "BENCH_fig3_crosscheck.json"
    )
    with open(out_path, "w") as fh:
        _json.dump(
            {
                "fig3_crosscheck": {
                    "oam_samples": len(samples),
                    "trace_records": len(records),
                    "oam_mean_delay_ns": round(oam_mean, 1),
                    "trace_mean_delay_ns": round(trace_mean, 1),
                    "exact_prefix_match": len(samples),
                }
            },
            fh,
            indent=2,
        )


def test_fig3_shape_and_report(benchmark):
    if len(REGISTRY.results) < 5:
        pytest.skip("figure 3 benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    norm = REGISTRY.normalised("baseline_ipv6")
    print(REGISTRY.report("baseline_ipv6", PAPER))

    # Raising the probing ratio 100-fold costs comparatively little at
    # the head-end: the dominant per-packet work (program invocation,
    # map lookup, random draw) is ratio-independent; only the sampled
    # 1 % pay the encapsulation.
    assert norm["encap_1_100"] > 0.7 * norm["encap_1_10000"]
    # End.DM at 1:10000 is essentially free (probes are negligible).
    assert norm["end_dm_1_10000"] > 0.9 * norm["end_dm_1_100"]
    # The End.DM node degrades as the probe fraction grows.
    assert norm["end_dm_1_10000"] >= norm["end_dm_1_100"] * 0.95
    benchmark.extra_info["normalised"] = {k: round(v, 3) for k, v in norm.items()}
