"""§3.2 JIT ablation — "the throughput ... is divided by a factor of 1.8".

Measures each eBPF program's End.BPF datapath throughput with the JIT
enabled and disabled.  The paper reports the factor for Add TLV and notes
"similar factors ... on other programs with similar complexities" and
that the factor grows with instruction count — both properties asserted
here.
"""

import pytest

from repro.bench import BATCH_SIZE, copy_batch, drive_batch, make_router
from repro.net import EndBPF
from repro.progs import add_tlv_prog, end_prog, end_t_prog, tag_increment_prog
from repro.sim.trafgen import batch_srv6_udp

PROGRAMS = {
    "end": end_prog,
    "end_t": lambda jit: end_t_prog(254, jit=jit),
    "tag_increment": tag_increment_prog,
    "add_tlv": add_tlv_prog,
}

RESULTS: dict[tuple[str, bool], float] = {}


def build(name: str, jit: bool):
    node = make_router()
    factory = PROGRAMS[name]
    prog = factory(jit=jit) if name != "end_t" else end_t_prog(254, jit=jit)
    node.add_route("fc00:e::100/128", encap=EndBPF(prog))
    templates = batch_srv6_udp(
        "fc00:1::1", ["fc00:e::100", "fc00:2::2"], BATCH_SIZE, payload_size=64
    )
    return node, templates


@pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_jit_ablation(benchmark, name, jit):
    node, templates = build(name, jit)

    def setup():
        return (node, copy_batch(templates)), {}

    benchmark.pedantic(drive_batch, setup=setup, rounds=6, warmup_rounds=1)
    RESULTS[(name, jit)] = benchmark.stats.stats.min
    benchmark.extra_info["kpps"] = round(BATCH_SIZE / benchmark.stats.stats.mean / 1e3, 1)


PROGRAM_LEVEL: dict[bool, float] = {}


@pytest.mark.parametrize("jit", [True, False], ids=["jit", "nojit"])
def test_program_level_add_tlv(benchmark, jit):
    """Pure program-invocation cost — the quantity the paper's x1.8 JIT
    factor refers to (no datapath around it)."""
    from repro.net import make_srv6_udp_packet

    prog = add_tlv_prog(jit=jit)
    raw = bytes(
        make_srv6_udp_packet(
            "fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x" * 64
        ).data
    )

    def setup():
        hctx = prog.make_context(raw)
        hctx.hook = "seg6local"
        return (hctx,), {}

    benchmark.pedantic(prog.run, setup=setup, rounds=300, warmup_rounds=20)
    PROGRAM_LEVEL[jit] = benchmark.stats.stats.min


def test_program_level_jit_factor_report(benchmark):
    if len(PROGRAM_LEVEL) < 2:
        pytest.skip("program-level benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    factor = PROGRAM_LEVEL[False] / PROGRAM_LEVEL[True]
    print(f"\n=== program-level JIT factor (Add TLV): x{factor:.2f} "
          "(paper: x1.8) ===")
    benchmark.extra_info["program_level_jit_factor"] = round(factor, 2)
    assert factor > 1.2


def test_jit_factors_report(benchmark):
    if len(RESULTS) < 2 * len(PROGRAMS):
        pytest.skip("ablation benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== JIT ablation (program throughput ratio jit/nojit) ===")
    factors = {}
    for name in PROGRAMS:
        factor = RESULTS[(name, False)] / RESULTS[(name, True)]
        factors[name] = factor
        print(f"  {name:<15} x{factor:.2f}")
    benchmark.extra_info["factors"] = {k: round(v, 2) for k, v in factors.items()}
    # Programs that do real work benefit measurably from the JIT.
    assert factors["add_tlv"] > 1.1
    assert factors["tag_increment"] > 1.1
    # The factor grows with program complexity (paper: "expected to
    # increase when the number of instructions per BPF program increases").
    assert factors["add_tlv"] >= factors["end"] * 0.95
