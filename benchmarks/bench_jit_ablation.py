"""§3.2 JIT ablation — "the throughput ... is divided by a factor of 1.8".

Measures each eBPF program's End.BPF datapath throughput across the three
execution engines: the interpreter, the original v1 translator (kept
exactly for this ablation) and the v2 translator (region-specialised
memory, threaded dispatch).  The paper reports the interp-vs-JIT factor
for Add TLV and notes "similar factors ... on other programs with
similar complexities" and that the factor grows with instruction count —
both properties asserted here.

The v2 rows are additionally held to the archived first-landing numbers
(``BENCH_pr4.json``): re-landing the batch-resident datapath must
reproduce the throughput that justified it, not merely beat the
interpreter.  Results are written to ``BENCH_jit_ablation.json``
(override with ``REPRO_BENCH_JSON``) for CI to archive.
"""

import json
import os

import pytest

from repro.bench import BATCH_SIZE, copy_batch, drive_batch, make_router
from repro.net import EndBPF
from repro.progs import add_tlv_prog, end_prog, end_t_prog, tag_increment_prog
from repro.sim.trafgen import batch_srv6_udp

PROGRAMS = {
    "end": end_prog,
    "end_t": lambda jit: end_t_prog(254, jit=jit),
    "tag_increment": tag_increment_prog,
    "add_tlv": add_tlv_prog,
}

# jit= argument per engine row.
ENGINES = {"interp": False, "jit_v1": "v1", "jit_v2": True}

# Archived v2 interp-relative datapath factors from the first landing
# (BENCH_pr4.json, jit_ablation.datapath_factors.*.jit_v2).  The floor
# leaves ~0.7 of headroom for host noise; dropping below it means the
# re-landed fast path lost what the revert was supposed to preserve.
PR4_V2_FACTORS = {"add_tlv": 2.73, "tag_increment": 2.39, "end_t": 1.71}
PR4_TOLERANCE = 0.7

RESULTS: dict[tuple[str, str], float] = {}


def build(name: str, jit):
    node = make_router()
    factory = PROGRAMS[name]
    prog = factory(jit=jit)
    node.add_route("fc00:e::100/128", encap=EndBPF(prog))
    templates = batch_srv6_udp(
        "fc00:1::1", ["fc00:e::100", "fc00:2::2"], BATCH_SIZE, payload_size=64
    )
    return node, templates


@pytest.mark.parametrize("engine", list(ENGINES))
@pytest.mark.parametrize("name", list(PROGRAMS))
def test_jit_ablation(benchmark, name, engine):
    node, templates = build(name, ENGINES[engine])

    def setup():
        return (node, copy_batch(templates)), {}

    benchmark.pedantic(drive_batch, setup=setup, rounds=6, warmup_rounds=1)
    RESULTS[(name, engine)] = benchmark.stats.stats.min
    benchmark.extra_info["kpps"] = round(BATCH_SIZE / benchmark.stats.stats.mean / 1e3, 1)


PROGRAM_LEVEL: dict[str, float] = {}


@pytest.mark.parametrize("engine", list(ENGINES))
def test_program_level_add_tlv(benchmark, engine):
    """Pure program-invocation cost — the quantity the paper's x1.8 JIT
    factor refers to (no datapath around it)."""
    from repro.net import make_srv6_udp_packet

    prog = add_tlv_prog(jit=ENGINES[engine])
    raw = bytes(
        make_srv6_udp_packet(
            "fc00:1::1", ["fc00:e::100", "fc00:2::2"], 1, 2, b"x" * 64
        ).data
    )

    def setup():
        hctx = prog.make_context(raw)
        hctx.hook = "seg6local"
        return (hctx,), {}

    benchmark.pedantic(prog.run, setup=setup, rounds=300, warmup_rounds=20)
    PROGRAM_LEVEL[engine] = benchmark.stats.stats.min


def test_program_level_jit_factor_report(benchmark):
    if len(PROGRAM_LEVEL) < len(ENGINES):
        pytest.skip("program-level benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    factor = PROGRAM_LEVEL["interp"] / PROGRAM_LEVEL["jit_v2"]
    v1_factor = PROGRAM_LEVEL["interp"] / PROGRAM_LEVEL["jit_v1"]
    print(f"\n=== program-level JIT factor (Add TLV): v2 x{factor:.2f}, "
          f"v1 x{v1_factor:.2f} (paper: x1.8) ===")
    benchmark.extra_info["program_level_jit_factor"] = round(factor, 2)
    benchmark.extra_info["program_level_jit_factor_v1"] = round(v1_factor, 2)
    assert factor > 1.2
    # v2 must not regress below the v1 translator it replaces.
    assert factor >= v1_factor * 0.85


def test_jit_factors_report(benchmark):
    if len(RESULTS) < len(ENGINES) * len(PROGRAMS):
        pytest.skip("ablation benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== JIT ablation (datapath throughput ratio vs interp) ===")
    factors: dict[str, dict[str, float]] = {}
    for name in PROGRAMS:
        interp = RESULTS[(name, "interp")]
        factors[name] = {
            engine: interp / RESULTS[(name, engine)]
            for engine in ENGINES
            if engine != "interp"
        }
        print(f"  {name:<15} v1 x{factors[name]['jit_v1']:.2f}   "
              f"v2 x{factors[name]['jit_v2']:.2f}")
    benchmark.extra_info["factors"] = {
        k: {e: round(f, 2) for e, f in v.items()} for k, v in factors.items()
    }

    # Programs that do real work benefit measurably from the JIT.
    assert factors["add_tlv"]["jit_v2"] > 1.1
    assert factors["tag_increment"]["jit_v2"] > 1.1
    # The factor grows with program complexity (paper: "expected to
    # increase when the number of instructions per BPF program increases").
    assert factors["add_tlv"]["jit_v2"] >= factors["end"]["jit_v2"] * 0.95
    # Hold the re-landed v2 datapath to the archived first-landing
    # factors (BENCH_pr4.json) within tolerance.
    for name, target in PR4_V2_FACTORS.items():
        measured = factors[name]["jit_v2"]
        assert measured >= target - PR4_TOLERANCE, (
            f"{name}: v2 datapath factor x{measured:.2f} fell below the "
            f"archived x{target:.2f} (tolerance {PR4_TOLERANCE})"
        )

    out = {
        "jit_ablation": {
            "datapath_factors": {
                k: {e: round(f, 2) for e, f in v.items()}
                for k, v in factors.items()
            },
            "engines_kpps": {
                f"{name}/{engine}": round(BATCH_SIZE / t / 1e3, 1)
                for (name, engine), t in sorted(RESULTS.items())
            },
            "program_level_add_tlv_kpps": {
                engine: round(1 / t / 1e3, 1)
                for engine, t in sorted(PROGRAM_LEVEL.items())
            },
            "pr4_targets": PR4_V2_FACTORS,
        }
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_jit_ablation.json")
    with open(out_path, "w") as fh:
        json.dump(out, fh, indent=2)
    print(f"  written to {out_path}")
