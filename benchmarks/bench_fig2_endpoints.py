"""Figure 2 — "Simple endpoint functions are efficiently supported."

Regenerates the paper's seven bars: forwarding throughput of R running
each endpoint function, normalised to raw IPv6 forwarding (the paper's
610 kpps reference).  Expected shape (paper §3.2):

* End (BPF) forwards ≈ 97 % of End (static);
* End.T (BPF) ≈ 95 % of End.T (static);
* Tag++ ≈ 3 % below End (BPF);
* Add TLV ≈ 5 % below End (BPF);
* Add TLV without JIT is ÷1.8 of the JIT'd version.

Absolute kpps differ (Python datapath vs Xeon kernel), the ordering and
rough factors must hold; the final test asserts them and prints the
normalised table alongside the paper's values.
"""

import pytest

from repro.bench import (
    BATCH_SIZE,
    FIG2_VARIANTS,
    ResultRegistry,
    amortisation_stats,
    attach_amortisation_info,
    copy_batch,
    drive_batch,
    make_fig2_router,
)

REGISTRY = ResultRegistry("Figure 2 — endpoint functions")

# Normalised values read off the paper's Figure 2.
PAPER = {
    "baseline_ipv6": 1.00,
    "end_static": 0.97,
    "end_bpf": 0.94,
    "end_t_static": 0.91,
    "end_t_bpf": 0.87,
    "tag_increment_bpf": 0.91,
    "add_tlv_bpf": 0.89,
    "add_tlv_bpf_nojit": 0.49,
}


@pytest.mark.parametrize("variant", FIG2_VARIANTS)
def test_fig2_variant(benchmark, variant):
    node, templates = make_fig2_router(variant)

    def setup():
        return (node, copy_batch(templates)), {}

    forwarded = drive_batch(node, copy_batch(templates))
    assert forwarded == BATCH_SIZE, f"{variant}: packets were dropped"

    baseline = amortisation_stats(node)
    benchmark.pedantic(drive_batch, setup=setup, rounds=8, warmup_rounds=2)
    REGISTRY.record(variant, benchmark.stats.stats.min)
    benchmark.extra_info["kpps"] = round(REGISTRY.results[variant].pps / 1e3, 1)
    attach_amortisation_info(benchmark, node, since=baseline)


def test_fig2_shape_and_report(benchmark):
    """Asserts the figure's shape; prints the regenerated table."""
    if len(REGISTRY.results) < len(FIG2_VARIANTS):
        pytest.skip("variant benchmarks did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    norm = REGISTRY.normalised("baseline_ipv6")
    print(REGISTRY.report("baseline_ipv6", PAPER))

    # Static actions beat (or equal) their BPF counterparts.  A 5 %
    # tolerance absorbs scheduler noise in the host timings.
    assert norm["end_static"] >= norm["end_bpf"] * 0.95
    assert norm["end_t_static"] >= norm["end_t_bpf"] * 0.95
    # Every eBPF function stays in the same order the paper reports:
    # End >= Tag++ >= AddTLV.
    assert norm["end_bpf"] >= norm["tag_increment_bpf"] * 0.95
    assert norm["tag_increment_bpf"] >= norm["add_tlv_bpf"] * 0.95
    # Same order of magnitude as plain forwarding.  (The paper's 3 % gap
    # is specific to a kernel datapath where an eBPF invocation costs
    # ~100 ns against a ~1.6 µs forwarding path; in this Python substrate
    # both costs are in µs, so the *relative* overhead is larger — see
    # EXPERIMENTS.md.)
    assert norm["end_bpf"] > 0.05
    # The JIT'd Add TLV beats the interpreted one by well over the
    # paper's ÷1.8 — with the v2 translator and the thin SRH span
    # checks the end-to-end factor measures ~2.6-2.7x (the fixed
    # datapath cost around the program no longer dilutes it).  The
    # floor absorbs host noise; program-level factors are asserted in
    # bench_jit_ablation.py.
    jit_factor = norm["add_tlv_bpf"] / norm["add_tlv_bpf_nojit"]
    assert jit_factor > 2.0, f"JIT factor regressed: {jit_factor:.2f}x"
    benchmark.extra_info["jit_factor"] = round(jit_factor, 2)
    benchmark.extra_info["normalised"] = {k: round(v, 3) for k, v in norm.items()}
