"""§4.2 TCP results (reported in the paper's text, reproduced as a table).

===============================  ==========  ============
Configuration                    Paper       This repo
===============================  ==========  ============
TCP x1, no compensation          3.8 Mb/s    (measured)
TCP x1, TWD delay compensation   68 Mb/s     (measured)
TCP x4, TWD delay compensation   70 Mb/s     (measured)
===============================  ==========  ============

Shape assertions: the uncompensated bond collapses to a small fraction
of the 80 Mb/s aggregate; compensation recovers most of it; four
parallel connections do at least as well as one.
"""

import pytest

from repro.sim import build_setup2, mbps
from repro.sim.scheduler import NS_PER_SEC
from repro.usecases import deploy_hybrid_access

WARMUP_NS = 2 * NS_PER_SEC
DURATION_NS = 8 * NS_PER_SEC

RESULTS: dict[str, float] = {}
PAPER = {"disaster": 3.8, "compensated_x1": 68.0, "compensated_x4": 70.0}


def run_tcp(compensation: bool, flows: int) -> float:
    setup = build_setup2()
    deploy_hybrid_access(setup, weights=(5, 3), compensation=compensation)
    connections = [setup.net.tcp("S1", "S2", port=5000 + i) for i in range(flows)]
    setup.net.run(until_ns=WARMUP_NS)
    for sender, _ in connections:
        sender.start()
    setup.net.run(until_ns=WARMUP_NS + DURATION_NS)
    return sum(receiver.goodput_bps() for _s, receiver in connections)


CASES = {
    "disaster": (False, 1),
    "compensated_x1": (True, 1),
    "compensated_x4": (True, 4),
}


@pytest.mark.parametrize("case", list(CASES))
def test_tcp_case(benchmark, case):
    compensation, flows = CASES[case]
    goodput = benchmark.pedantic(run_tcp, args=(compensation, flows), rounds=1)
    RESULTS[case] = mbps(goodput)
    benchmark.extra_info["goodput_mbps"] = round(RESULTS[case], 1)
    benchmark.extra_info["paper_mbps"] = PAPER[case]


def test_tcp_table_shape_and_report(benchmark):
    if len(RESULTS) < len(CASES):
        pytest.skip("TCP cases did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== §4.2 TCP over the 80 Mb/s bond (goodput, Mb/s) ===")
    print(f"  {'configuration':<18} {'paper':>8} {'measured':>10}")
    for case in CASES:
        print(f"  {case:<18} {PAPER[case]:>8.1f} {RESULTS[case]:>10.1f}")

    disaster = RESULTS["disaster"]
    one = RESULTS["compensated_x1"]
    four = RESULTS["compensated_x4"]
    # The collapse: a small fraction of the aggregate (paper: 3.8 of 80).
    assert disaster < 15
    # Compensation recovers most of the bond (paper: 68 of 80).
    assert one > 40
    assert one > 5 * disaster
    # Parallel connections fill the bond at least as well (paper: 70).
    assert four >= one * 0.95
    assert four < 85  # cannot exceed the physical aggregate
