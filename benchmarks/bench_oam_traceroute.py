"""§4.3 (qualitative) — ECMP discovery with the End.OAMP traceroute.

The paper reports no numbers for this use case; the reproduced claim is
functional: on an ECMP diamond, the modified traceroute discovers every
equal-cost nexthop at OAMP-capable hops and falls back to legacy ICMP
elsewhere.  The benchmark times a complete multi-hop trace (probe
round-trips, End.OAMP executions, perf-event relaying) as a end-to-end
control-plane latency figure.
"""

import pytest

from repro.net import Nexthop, Node, pton
from repro.sim import Link, Scheduler
from repro.usecases import OampDaemon, SrTraceroute, install_end_oamp

ADDR = {
    "C": "fc00:c::1",
    "R1": "fc00:10::1",
    "R2A": "fc00:2a::1",
    "R2B": "fc00:2b::1",
    "R2C": "fc00:2c::1",
    "R3": "fc00:30::1",
    "T": "fc00:f::1",
}
SEG_R1 = "fc00:10::aa"
SEG_R3 = "fc00:30::aa"


def build():
    """A 3-way ECMP diamond with OAMP on the fan-out and fan-in routers."""
    sched = Scheduler()
    clock = sched.now_fn()
    nodes = {name: Node(name, clock_ns=clock) for name in ADDR}
    for name, node in nodes.items():
        node.add_address(ADDR[name])

    def wire(n1, d1, n2, d2):
        nodes[n1].add_device(d1)
        nodes[n2].add_device(d2)
        Link(sched, nodes[n1].devices[d1], nodes[n2].devices[d2], 1e9, 50_000)

    wire("C", "eth0", "R1", "c")
    for mid, dev in (("R2A", "a"), ("R2B", "b"), ("R2C", "d")):
        wire("R1", dev, mid, "up")
        wire(mid, "down", "R3", dev)
    wire("R3", "t", "T", "eth0")

    c, r1, r3, t = nodes["C"], nodes["R1"], nodes["R3"], nodes["T"]
    mids = [nodes[n] for n in ("R2A", "R2B", "R2C")]

    c.add_route("::/0", via=ADDR["R1"], dev="eth0")
    r1.add_route(
        "fc00:f::/64",
        nexthops=[
            Nexthop(via=ADDR["R2A"], dev="a"),
            Nexthop(via=ADDR["R2B"], dev="b"),
            Nexthop(via=ADDR["R2C"], dev="d"),
        ],
    )
    r1.add_route("fc00:c::/64", via=ADDR["C"], dev="c")
    r1.add_route("fc00:30::/64", via=ADDR["R2A"], dev="a")
    for mid in mids:
        mid.add_route("fc00:f::/64", via=ADDR["R3"], dev="down")
        mid.add_route("fc00:30::/64", via=ADDR["R3"], dev="down")
        mid.add_route("fc00:c::/64", via=ADDR["R1"], dev="up")
        mid.add_route("fc00:10::/64", via=ADDR["R1"], dev="up")
    r3.add_route("fc00:f::/64", via=ADDR["T"], dev="t")
    for back in ("fc00:c::/64", "fc00:10::/64"):
        r3.add_route(back, via=ADDR["R2A"], dev="a")
    t.add_route("::/0", via=ADDR["R3"], dev="eth0")

    for router, seg in ((r1, SEG_R1), (r3, SEG_R3)):
        events, _ = install_end_oamp(router, seg)
        OampDaemon(router, events).start(sched)
    return sched, c


def run_trace():
    sched, client = build()
    trace = SrTraceroute(
        client,
        ADDR["T"],
        sched,
        oamp_segments={
            pton(ADDR["R1"]): pton(SEG_R1),
            pton(ADDR["R3"]): pton(SEG_R3),
        },
    )
    return trace.run()


def test_traceroute_discovers_all_ecmp_paths(benchmark):
    hops = benchmark.pedantic(run_trace, rounds=3)
    assert hops[-1].reached
    first = hops[0]
    assert first.nexthops is not None
    assert set(first.nexthops) == {
        pton(ADDR["R2A"]),
        pton(ADDR["R2B"]),
        pton(ADDR["R2C"]),
    }
    # Middle hop (no OAMP): legacy fallback.
    assert hops[1].nexthops is None
    benchmark.extra_info["hops"] = len(hops)
    benchmark.extra_info["ecmp_discovered"] = len(first.nexthops)
