"""§4.3 (qualitative) — ECMP discovery with the End.OAMP traceroute.

The paper reports no numbers for this use case; the reproduced claim is
functional: on an ECMP diamond, the modified traceroute discovers every
equal-cost nexthop at OAMP-capable hops and falls back to legacy ICMP
elsewhere.  The benchmark times a complete multi-hop trace (probe
round-trips, End.OAMP executions, perf-event relaying) as a end-to-end
control-plane latency figure.
"""

import pytest

from repro.lab import Network
from repro.net import pton
from repro.usecases import OampDaemon, SrTraceroute, install_end_oamp

ADDR = {
    "C": "fc00:c::1",
    "R1": "fc00:10::1",
    "R2A": "fc00:2a::1",
    "R2B": "fc00:2b::1",
    "R2C": "fc00:2c::1",
    "R3": "fc00:30::1",
    "T": "fc00:f::1",
}
SEG_R1 = "fc00:10::aa"
SEG_R3 = "fc00:30::aa"


def build() -> Network:
    """A 3-way ECMP diamond with OAMP on the fan-out and fan-in routers."""
    net = Network()
    for name, addr in ADDR.items():
        net.add_node(name, addr=addr)

    net.add_link("C", "R1", 1e9, 50_000, dev_a="eth0", dev_b="c")
    for mid, dev in (("R2A", "a"), ("R2B", "b"), ("R2C", "d")):
        net.add_link("R1", mid, 1e9, 50_000, dev_a=dev, dev_b="up")
        net.add_link(mid, "R3", 1e9, 50_000, dev_a="down", dev_b=dev)
    net.add_link("R3", "T", 1e9, 50_000, dev_a="t", dev_b="eth0")

    net.config("C", f"route add ::/0 via {ADDR['R1']} dev eth0")
    net.config(
        "R1",
        "route add fc00:f::/64 "
        f"nexthop via {ADDR['R2A']} dev a "
        f"nexthop via {ADDR['R2B']} dev b "
        f"nexthop via {ADDR['R2C']} dev d",
    )
    net.config("R1", f"route add fc00:c::/64 via {ADDR['C']} dev c")
    net.config("R1", f"route add fc00:30::/64 via {ADDR['R2A']} dev a")
    for mid in ("R2A", "R2B", "R2C"):
        net.config(mid, f"route add fc00:f::/64 via {ADDR['R3']} dev down")
        net.config(mid, f"route add fc00:30::/64 via {ADDR['R3']} dev down")
        net.config(mid, f"route add fc00:c::/64 via {ADDR['R1']} dev up")
        net.config(mid, f"route add fc00:10::/64 via {ADDR['R1']} dev up")
    net.config("R3", f"route add fc00:f::/64 via {ADDR['T']} dev t")
    for back in ("fc00:c::/64", "fc00:10::/64"):
        net.config("R3", f"route add {back} via {ADDR['R2A']} dev a")
    net.config("T", f"route add ::/0 via {ADDR['R3']} dev eth0")

    for router, seg in (("R1", SEG_R1), ("R3", SEG_R3)):
        events, _ = install_end_oamp(net[router], seg)
        OampDaemon(net[router], events).start(net.scheduler)
    return net


def run_trace():
    net = build()
    trace = SrTraceroute(
        net["C"],
        ADDR["T"],
        net.scheduler,
        oamp_segments={
            pton(ADDR["R1"]): pton(SEG_R1),
            pton(ADDR["R3"]): pton(SEG_R3),
        },
    )
    return trace.run()


def test_traceroute_discovers_all_ecmp_paths(benchmark):
    hops = benchmark.pedantic(run_trace, rounds=3)
    assert hops[-1].reached
    first = hops[0]
    assert first.nexthops is not None
    assert set(first.nexthops) == {
        pton(ADDR["R2A"]),
        pton(ADDR["R2B"]),
        pton(ADDR["R2C"]),
    }
    # Middle hop (no OAMP): legacy fallback.
    assert hops[1].nexthops is None
    benchmark.extra_info["hops"] = len(hops)
    benchmark.extra_info["ecmp_discovered"] = len(first.nexthops)
