"""Shared options for the benchmark suite.

``pytest benchmarks/ --burst`` flips the figure benchmarks onto the
burst-mode fast path (see ``docs/BENCHMARKS.md``); the default remains the
scalar per-packet datapath the paper's methodology implies.  The knob is
also available without pytest as ``REPRO_BURST=1``.
"""

import repro.bench.harness as harness


def pytest_addoption(parser):
    parser.addoption(
        "--burst",
        action="store_true",
        default=False,
        help="drive benchmark datapaths through the burst-mode fast path",
    )


def pytest_configure(config):
    if config.getoption("--burst"):
        harness.BURST_MODE = True
