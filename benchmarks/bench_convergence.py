"""Convergence bench — the packet-loss window around a mid-run link failure.

Not a paper figure: it qualifies the ``repro.ctrl`` control plane on the
paper's Setup 2.  A constant-rate UDP flow runs S1 → S2 while the DSL
access link (the IGP-preferred path) fails mid-run:

* **igp_only** — the failure is detected by the hello dead-interval,
  flooded, and globally reconverged.  The loss window is the detection
  window (~dead interval).
* **frr** — TI-LFA backup routes are precomputed as seg6 encap segment
  lists and installed at carrier loss.  Only in-flight packets die; the
  loss window collapses to the flow's inter-packet gap.

The report asserts the FRR loss window is strictly smaller and writes
``BENCH_convergence.json`` (override with ``REPRO_BENCH_JSON``) so CI
can archive the trajectory next to the other ``BENCH_*.json`` files.
"""

import json
import os

import pytest

from repro.lab import SETUP2_IGP_COSTS, build_setup2
from repro.sim.scheduler import NS_PER_MS, NS_PER_SEC

RATE_BPS = 10e6
PAYLOAD = 1000
WIRE_BYTES = PAYLOAD + 48
FLOW_START_NS = 500 * NS_PER_MS
FAIL_NS = 900 * NS_PER_MS
FLOW_DURATION_NS = NS_PER_SEC

RESULTS: dict[str, dict] = {}


def run_failover(frr: bool) -> dict:
    setup = build_setup2()
    net = setup.net
    ctrl = net.ctrl(frr=frr, costs=SETUP2_IGP_COSTS)
    net.run(until_ms=500)
    assert ctrl.converged()
    arrivals: list[int] = []
    meter = net.sink("S2")
    net["S2"].bind(lambda pkt, node: arrivals.append(node.clock_ns()), proto=17, port=5201)
    flow = net.trafgen("S1", dst="fc00:2::2", rate_bps=RATE_BPS, payload_size=PAYLOAD)
    flow.start(at_ns=FLOW_START_NS, duration_ns=FLOW_DURATION_NS)
    net.fail_link("A", "R", dev="dsl", at_ns=FAIL_NS)
    net.run(until_ms=3500)
    # The loss window: the largest delivery gap opening after the failure.
    post = [t for t in arrivals if t > FAIL_NS - 50 * NS_PER_MS]
    gaps = [b - a for a, b in zip(post, post[1:])] or [0]
    return {
        "sent": flow.stats.sent,
        "delivered": meter.packets,
        "lost": flow.stats.sent - meter.packets,
        "loss_window_ms": round(max(gaps) / NS_PER_MS, 3),
        "dead_interval_ms": ctrl.dead_interval_ns / NS_PER_MS,
        "frr_fired": ctrl.bus.count("frr-fired"),
        "spf_runs": ctrl.bus.count("spf-run"),
        "adjacency_downs": ctrl.bus.count("adjacency-down"),
    }


@pytest.mark.parametrize("mode", ["igp_only", "frr"])
def test_convergence_point(benchmark, mode):
    result = benchmark.pedantic(run_failover, args=(mode == "frr",), rounds=1)
    RESULTS[mode] = result
    benchmark.extra_info.update(result)
    # Sanity per mode: traffic resumed after the failure in both cases.
    assert result["delivered"] > 0.6 * result["sent"]


def test_convergence_report(benchmark):
    if len(RESULTS) < 2:
        pytest.skip("points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    igp, frr = RESULTS["igp_only"], RESULTS["frr"]
    rate_pps = RATE_BPS / (8 * WIRE_BYTES)
    print("\n=== loss window around a mid-run DSL-link failure (Setup 2) ===")
    print(f"  flow: {RATE_BPS / 1e6:.0f} Mb/s, {rate_pps:.0f} pps; "
          f"dead interval {igp['dead_interval_ms']:.0f} ms")
    for name, result in (("igp_only", igp), ("frr", frr)):
        print(
            f"  {name:<9} lost {result['lost']:>4}/{result['sent']} pkts   "
            f"window {result['loss_window_ms']:8.3f} ms   "
            f"(frr fired {result['frr_fired']}x, {result['spf_runs']} SPF runs)"
        )
    # IGP-only loses ≈ one detection window of traffic...
    expected = igp["dead_interval_ms"] / 1e3 * rate_pps
    assert 0.5 * expected < igp["lost"] < 2.5 * expected
    # ... while FRR loses at most in-flight packets, and its window is
    # strictly smaller.
    assert frr["frr_fired"] >= 1
    assert frr["lost"] <= 3
    assert frr["loss_window_ms"] < igp["loss_window_ms"]
    benchmark.extra_info["igp_only"] = igp
    benchmark.extra_info["frr"] = frr
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_convergence.json")
    with open(out_path, "w") as fh:
        json.dump({"convergence": {"igp_only": igp, "frr": frr}}, fh, indent=2)
        fh.write("\n")
    print(f"  wrote {out_path}")
