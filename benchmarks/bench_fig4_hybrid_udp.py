"""Figure 4 — "Aggregated UDP goodput with Turris Omnia".

Regenerates the paper's three series over UDP payload sizes 200–1400 B:

* **IPv6 forward.** — the CPE only forwards plain IPv6;
* **Kernel decap.** — traffic arrives SRv6-encapsulated and the CPE's
  native End.DT6 decapsulates (paper: ~10 % overhead);
* **eBPF WRR** — the CPE itself runs the WRR encapsulation program
  *without the JIT* (the paper's ARM32 JIT bug), making the interpreter
  the bottleneck.

The CPE's CPU is modelled as a single-server queue with per-class packet
costs in the Turris class (see :class:`repro.sim.cpu.CostModel`); the
links run at 1 Gb/s, so small payloads are CPU-bound (goodput grows
linearly with payload size) and the baseline approaches line rate at
1400 B — the figure's shape.
"""

import pytest

from repro.bench import amortisation_stats
from repro.ebpf import ArrayMap
from repro.lab import Network
from repro.progs import wrr_config_value, wrr_prog
from repro.sim import CostModel, mbps
from repro.sim.scheduler import NS_PER_SEC

PAYLOADS = (200, 400, 600, 800, 1000, 1200, 1400)
SERIES = ("ipv6_forward", "kernel_decap", "ebpf_wrr")
RESULTS: dict[tuple[str, int], float] = {}

DURATION_NS = NS_PER_SEC // 4

# The experiment is linearly scaled down (CPU costs x4, link rates /4)
# so each point simulates tens rather than hundreds of thousands of
# packets; every ratio in the figure is scale-invariant.
SCALE = 4
LINK_RATE = 1e9 / SCALE
OFFERED_PPS = 36_000  # comfortably above the scaled CPE's ~22.7 kpps


def scaled_cost_model() -> CostModel:
    base = CostModel(classifier=classify)
    return CostModel(
        forward_ns=base.forward_ns * SCALE,
        decap_ns=base.decap_ns * SCALE,
        bpf_jit_ns=base.bpf_jit_ns * SCALE,
        bpf_interp_ns=base.bpf_interp_ns * SCALE,
        classifier=classify,
    )


def classify(pkt, node):
    """CPE work classification for the CPU cost model."""
    mode = getattr(node, "bench_mode", "ipv6_forward")
    if mode == "kernel_decap" and pkt.next_header == 43:
        return "decap"
    if mode == "ebpf_wrr":
        return "bpf_interp"
    return "forward"


def build(mode: str) -> Network:
    """S1 — A ==(2 x 1 Gb/s)== M(CPE) — S2, with the CPE CPU-bound."""
    net = Network()
    net.add_node("S1", addr="fc00:1::1")
    net.add_node("A", addr="fc00:aa::1")
    m = net.add_node("M", addr="fc00:bb::1")
    net.add_node("S2", addr="fc00:2::2")

    net.add_link("S1", "A", 10 * LINK_RATE, 10_000, dev_a="eth0", dev_b="wan")
    net.add_link("A", "M", LINK_RATE, 10_000, dev_a="l0", dev_b="l0")
    net.add_link("A", "M", LINK_RATE, 10_000, dev_a="l1", dev_b="l1")
    net.add_link("M", "S2", 10 * LINK_RATE, 10_000, dev_a="lan", dev_b="eth0")

    net.config("S1", "route add ::/0 via fc00:aa::1 dev eth0")
    net.config("S2", "route add ::/0 via fc00:bb::1 dev eth0")
    net.config("A", "route add fc00:1::/64 via fc00:1::1 dev wan")
    net.config("M", "route add fc00:2::/64 via fc00:2::2 dev lan")
    net.config("M", "route add fc00:1::/64 via fc00:aa::1 dev l0")

    m.bench_mode = mode
    net.cpu("M", scaled_cost_model(), queue_limit=200)

    if mode == "ipv6_forward":
        # A spreads plain packets across both links by flow: ECMP over
        # the four generator flows (a single flow sticks to one link).
        net.config(
            "A",
            "route add fc00:2::/64 "
            "nexthop via fc00:bb::1 dev l0 nexthop via fc00:bb::1 dev l1",
        )
    elif mode == "kernel_decap":
        # Static seg6 encap at A, native End.DT6 decap at the CPE.
        net.config("A", "route add fc00:2::/64 encap seg6 mode encap segs fc00:bb::d0")
        net.config("A", "route add fc00:bb::d0/128 via fc00:bb::1 dev l0")
        net.config("M", "route add fc00:bb::d0/128 encap seg6local action End.DT6 table 254")
    elif mode == "ebpf_wrr":
        # The CPE is also the WRR encapsulator (upstream direction in the
        # paper); model its eBPF cost on the downstream path by running
        # the WRR at A but charging the CPE interpreter cost per packet.
        config = ArrayMap(f"f4cfg_{id(object())}", value_size=40, max_entries=1)
        state = ArrayMap(f"f4st_{id(object())}", value_size=16, max_entries=1)
        config.update(b"\x00" * 4, wrr_config_value("fc00:bb::d0", "fc00:bb::d1", 1, 1))
        net.load("wrr_nojit", wrr_prog(config, state, jit=False))
        net.config("A", "route add fc00:2::/64 encap bpf out obj wrr_nojit")
        net.config("A", "route add fc00:bb::d0/128 via fc00:bb::1 dev l0")
        net.config("A", "route add fc00:bb::d1/128 via fc00:bb::1 dev l1")
        net.config("M", "route add fc00:bb::d0/128 encap seg6local action End.DT6 table 254")
        net.config("M", "route add fc00:bb::d1/128 encap seg6local action End.DT6 table 254")
    return net


LAST_RUN_STATS: dict = {}  # amortisation counters of the most recent run


def run_series(mode: str, payload: int) -> float:
    net = build(mode)
    cpe = net["M"]
    meter = net.sink("S2", port=5201)
    baseline = amortisation_stats(cpe, net.scheduler)
    # Constant *packet* rate across payload sizes (iperf3 driven at a rate
    # beyond capacity): the CPE stays the bottleneck at every point.
    per_flow_rate = OFFERED_PPS / 4 * (payload + 48) * 8
    # Per-packet pacing (burst=1): Figure 4's goodput shape depends on the
    # CPE draining packet by packet, so the generators keep the finest
    # pacing grain the batch-native datapath offers.
    flows = [
        net.trafgen(
            "S1", dst="fc00:2::2",
            rate_bps=per_flow_rate, payload_size=payload,
            src_port=40000 + i, flow_label=i,
        )
        for i in range(4)
    ]
    for flow in flows:
        flow.start(duration_ns=DURATION_NS)
    LAST_RUN_STATS.clear()
    with net.run(until_ns=DURATION_NS + NS_PER_SEC // 5):
        # The CPE is the CPU-bound router Figure 4 is about; delta against
        # the pre-run snapshot so each point records only its own run.
        LAST_RUN_STATS.update(amortisation_stats(cpe, net.scheduler, since=baseline))
        return meter.goodput_bps() * SCALE  # report at the unscaled magnitude


@pytest.mark.parametrize("payload", PAYLOADS)
@pytest.mark.parametrize("mode", SERIES)
def test_fig4_point(benchmark, mode, payload):
    result = benchmark.pedantic(run_series, args=(mode, payload), rounds=1)
    RESULTS[(mode, payload)] = result
    benchmark.extra_info["goodput_mbps"] = round(mbps(result), 1)
    benchmark.extra_info.update(LAST_RUN_STATS)


def test_fig4_shape_and_report(benchmark):
    if len(RESULTS) < len(SERIES) * len(PAYLOADS):
        pytest.skip("figure 4 points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== Figure 4 — aggregated UDP goodput (Mb/s) vs payload ===")
    print(f"  {'payload':>8} {'IPv6 fwd':>10} {'kern decap':>11} {'eBPF WRR':>10}")
    for payload in PAYLOADS:
        row = [mbps(RESULTS[(mode, payload)]) for mode in SERIES]
        print(f"  {payload:>8} {row[0]:>10.0f} {row[1]:>11.0f} {row[2]:>10.0f}")

    for payload in PAYLOADS:
        fwd = RESULTS[("ipv6_forward", payload)]
        decap = RESULTS[("kernel_decap", payload)]
        wrr = RESULTS[("ebpf_wrr", payload)]
        # Ordering: forward >= decap >= WRR-without-JIT (paper's series).
        assert fwd >= decap * 0.98, f"decap above baseline at {payload}"
        assert decap >= wrr * 0.98, f"WRR above decap at {payload}"

    # CPU-bound region: goodput grows ~linearly with payload size.
    assert RESULTS[("ipv6_forward", 1400)] > 3 * RESULTS[("ipv6_forward", 200)]
    # Decap ~10 % below baseline in the CPU-bound region (paper).
    ratio = RESULTS[("kernel_decap", 600)] / RESULTS[("ipv6_forward", 600)]
    assert 0.8 < ratio < 1.0
    # WRR approaches the baseline at 1400 B (paper: "almost capable of
    # reaching the baseline performance for 1400-byte payloads").
    closing = RESULTS[("ebpf_wrr", 1400)] / RESULTS[("ipv6_forward", 1400)]
    opening = RESULTS[("ebpf_wrr", 200)] / RESULTS[("ipv6_forward", 200)]
    assert closing >= opening - 0.02
    assert closing > 0.75
    benchmark.extra_info["series_mbps"] = {
        f"{mode}@{payload}": round(mbps(RESULTS[(mode, payload)]), 1)
        for mode in SERIES
        for payload in PAYLOADS
    }
