"""Figure 4 — "Aggregated UDP goodput with Turris Omnia".

Regenerates the paper's three series over UDP payload sizes 200–1400 B:

* **IPv6 forward.** — the CPE only forwards plain IPv6;
* **Kernel decap.** — traffic arrives SRv6-encapsulated and the CPE's
  native End.DT6 decapsulates (paper: ~10 % overhead);
* **eBPF WRR** — the CPE itself runs the WRR encapsulation program
  *without the JIT* (the paper's ARM32 JIT bug), making the interpreter
  the bottleneck.

The CPE's CPU is modelled as a single-server queue with per-class packet
costs in the Turris class (see :class:`repro.sim.cpu.CostModel`); the
links run at 1 Gb/s, so small payloads are CPU-bound (goodput grows
linearly with payload size) and the baseline approaches line rate at
1400 B — the figure's shape.
"""

import pytest

from repro.bench import amortisation_stats
from repro.ebpf import ArrayMap
from repro.net import BpfLwt, EndDT6, Node, Seg6Encap, pton
from repro.progs import wrr_config_value, wrr_prog
from repro.sim import CostModel, CpuQueue, FlowMeter, Link, Scheduler, UdpFlow, mbps
from repro.sim.scheduler import NS_PER_SEC

PAYLOADS = (200, 400, 600, 800, 1000, 1200, 1400)
SERIES = ("ipv6_forward", "kernel_decap", "ebpf_wrr")
RESULTS: dict[tuple[str, int], float] = {}

DURATION_NS = NS_PER_SEC // 4

# The experiment is linearly scaled down (CPU costs x4, link rates /4)
# so each point simulates tens rather than hundreds of thousands of
# packets; every ratio in the figure is scale-invariant.
SCALE = 4
LINK_RATE = 1e9 / SCALE
OFFERED_PPS = 36_000  # comfortably above the scaled CPE's ~22.7 kpps


def scaled_cost_model() -> CostModel:
    base = CostModel(classifier=classify)
    return CostModel(
        forward_ns=base.forward_ns * SCALE,
        decap_ns=base.decap_ns * SCALE,
        bpf_jit_ns=base.bpf_jit_ns * SCALE,
        bpf_interp_ns=base.bpf_interp_ns * SCALE,
        classifier=classify,
    )


def classify(pkt, node):
    """CPE work classification for the CPU cost model."""
    mode = getattr(node, "bench_mode", "ipv6_forward")
    if mode == "kernel_decap" and pkt.next_header == 43:
        return "decap"
    if mode == "ebpf_wrr":
        return "bpf_interp"
    return "forward"


def build(mode: str):
    """S1 — A ==(2 x 1 Gb/s)== M(CPE) — S2, with the CPE CPU-bound."""
    scheduler = Scheduler()
    clock = scheduler.now_fn()
    s1 = Node("S1", clock_ns=clock)
    a = Node("A", clock_ns=clock)
    m = Node("M", clock_ns=clock)
    s2 = Node("S2", clock_ns=clock)
    s1.add_device("eth0")
    a.add_device("wan")
    a.add_device("l0")
    a.add_device("l1")
    m.add_device("l0")
    m.add_device("l1")
    m.add_device("lan")
    s2.add_device("eth0")
    s1.add_address("fc00:1::1")
    a.add_address("fc00:aa::1")
    m.add_address("fc00:bb::1")
    s2.add_address("fc00:2::2")

    Link(scheduler, s1.devices["eth0"], a.devices["wan"], 10 * LINK_RATE, 10_000)
    Link(scheduler, a.devices["l0"], m.devices["l0"], LINK_RATE, 10_000)
    Link(scheduler, a.devices["l1"], m.devices["l1"], LINK_RATE, 10_000)
    Link(scheduler, m.devices["lan"], s2.devices["eth0"], 10 * LINK_RATE, 10_000)

    s1.add_route("::/0", via="fc00:aa::1", dev="eth0")
    s2.add_route("::/0", via="fc00:bb::1", dev="eth0")
    a.add_route("fc00:1::/64", via="fc00:1::1", dev="wan")
    m.add_route("fc00:2::/64", via="fc00:2::2", dev="lan")
    m.add_route("fc00:1::/64", via="fc00:aa::1", dev="l0")

    m.bench_mode = mode
    m.cpu = CpuQueue(scheduler, scaled_cost_model(), m, queue_limit=200)

    if mode == "ipv6_forward":
        # A round-robins plain packets across both links by flow; a single
        # flow sticks to one link, so use per-packet alternation via two
        # /65-style halves is overkill — pin to ECMP over flows instead.
        from repro.net import Nexthop

        a.add_route(
            "fc00:2::/64",
            nexthops=[
                Nexthop(via="fc00:bb::1", dev="l0"),
                Nexthop(via="fc00:bb::1", dev="l1"),
            ],
        )
    elif mode == "kernel_decap":
        # Static seg6 encap at A, native End.DT6 decap at the CPE.
        a.add_route("fc00:2::/64", encap=Seg6Encap(segments=[pton("fc00:bb::d0")]))
        a.add_route("fc00:bb::d0/128", via="fc00:bb::1", dev="l0")
        m.add_route("fc00:bb::d0/128", encap=EndDT6(table_id=254))
    elif mode == "ebpf_wrr":
        # The CPE is also the WRR encapsulator (upstream direction in the
        # paper); model its eBPF cost on the downstream path by running
        # the WRR at A but charging the CPE interpreter cost per packet.
        config = ArrayMap(f"f4cfg_{id(object())}", value_size=40, max_entries=1)
        state = ArrayMap(f"f4st_{id(object())}", value_size=16, max_entries=1)
        config.update(b"\x00" * 4, wrr_config_value("fc00:bb::d0", "fc00:bb::d1", 1, 1))
        a.add_route("fc00:2::/64", encap=BpfLwt(prog_out=wrr_prog(config, state, jit=False)))
        a.add_route("fc00:bb::d0/128", via="fc00:bb::1", dev="l0")
        a.add_route("fc00:bb::d1/128", via="fc00:bb::1", dev="l1")
        m.add_route("fc00:bb::d0/128", encap=EndDT6(table_id=254))
        m.add_route("fc00:bb::d1/128", encap=EndDT6(table_id=254))
    return scheduler, s1, s2, m


LAST_RUN_STATS: dict = {}  # amortisation counters of the most recent run


def run_series(mode: str, payload: int) -> float:
    scheduler, s1, s2, cpe = build(mode)
    meter = FlowMeter()
    s2.bind(meter.on_packet, proto=17, port=5201)
    baseline = amortisation_stats(cpe, scheduler)
    # Constant *packet* rate across payload sizes (iperf3 driven at a rate
    # beyond capacity): the CPE stays the bottleneck at every point.
    per_flow_rate = OFFERED_PPS / 4 * (payload + 48) * 8
    # Per-packet pacing (burst=1): Figure 4's goodput shape depends on the
    # CPE draining packet by packet, so the generators keep the finest
    # pacing grain the batch-native datapath offers.
    flows = [
        UdpFlow(
            scheduler, s1, "fc00:1::1", "fc00:2::2",
            rate_bps=per_flow_rate, payload_size=payload,
            src_port=40000 + i, flow_label=i,
        )
        for i in range(4)
    ]
    for flow in flows:
        flow.start(duration_ns=DURATION_NS)
    scheduler.run(until_ns=DURATION_NS + NS_PER_SEC // 5)
    LAST_RUN_STATS.clear()
    # The CPE is the CPU-bound router Figure 4 is about; delta against the
    # pre-run snapshot so each point records only its own amortisation.
    LAST_RUN_STATS.update(amortisation_stats(cpe, scheduler, since=baseline))
    return meter.goodput_bps() * SCALE  # report at the unscaled magnitude


@pytest.mark.parametrize("payload", PAYLOADS)
@pytest.mark.parametrize("mode", SERIES)
def test_fig4_point(benchmark, mode, payload):
    result = benchmark.pedantic(run_series, args=(mode, payload), rounds=1)
    RESULTS[(mode, payload)] = result
    benchmark.extra_info["goodput_mbps"] = round(mbps(result), 1)
    benchmark.extra_info.update(LAST_RUN_STATS)


def test_fig4_shape_and_report(benchmark):
    if len(RESULTS) < len(SERIES) * len(PAYLOADS):
        pytest.skip("figure 4 points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== Figure 4 — aggregated UDP goodput (Mb/s) vs payload ===")
    print(f"  {'payload':>8} {'IPv6 fwd':>10} {'kern decap':>11} {'eBPF WRR':>10}")
    for payload in PAYLOADS:
        row = [mbps(RESULTS[(mode, payload)]) for mode in SERIES]
        print(f"  {payload:>8} {row[0]:>10.0f} {row[1]:>11.0f} {row[2]:>10.0f}")

    for payload in PAYLOADS:
        fwd = RESULTS[("ipv6_forward", payload)]
        decap = RESULTS[("kernel_decap", payload)]
        wrr = RESULTS[("ebpf_wrr", payload)]
        # Ordering: forward >= decap >= WRR-without-JIT (paper's series).
        assert fwd >= decap * 0.98, f"decap above baseline at {payload}"
        assert decap >= wrr * 0.98, f"WRR above decap at {payload}"

    # CPU-bound region: goodput grows ~linearly with payload size.
    assert RESULTS[("ipv6_forward", 1400)] > 3 * RESULTS[("ipv6_forward", 200)]
    # Decap ~10 % below baseline in the CPU-bound region (paper).
    ratio = RESULTS[("kernel_decap", 600)] / RESULTS[("ipv6_forward", 600)]
    assert 0.8 < ratio < 1.0
    # WRR approaches the baseline at 1400 B (paper: "almost capable of
    # reaching the baseline performance for 1400-byte payloads").
    closing = RESULTS[("ebpf_wrr", 1400)] / RESULTS[("ipv6_forward", 1400)]
    opening = RESULTS[("ebpf_wrr", 200)] / RESULTS[("ipv6_forward", 200)]
    assert closing >= opening - 0.02
    assert closing > 0.75
    benchmark.extra_info["series_mbps"] = {
        f"{mode}@{payload}": round(mbps(RESULTS[(mode, payload)]), 1)
        for mode in SERIES
        for payload in PAYLOADS
    }
