"""Burst-mode scaling — throughput vs. concurrent flow count (1 → 10k).

Not a paper figure: this bench qualifies the burst-mode fast path that
lets the reproduction approach the traffic scale the paper's testbed
reaches natively (§3.2 drives the router at 610 kpps line rate; a scalar
Python datapath is orders of magnitude below that).  The router under
test is R from setup 1 running the End.BPF baseline function, driven
with the §3.2 trafgen workload spread over N concurrent flows — each
flow has its own source port *and* its own final segment, so per-flow
state (the node flow table, the SRH-advance memo) is genuinely stressed
rather than replaying one 5-tuple.

For every flow count the same packet batch is pushed through

* the **scalar** path — one ``Node.receive()`` per packet, a fresh eBPF
  context per invocation (the paper-faithful per-packet pipeline), and
* the **burst** path — ``Node.receive_burst()``, with compiled-handler
  reuse, flow-table route memoisation and batched egress,

and the two outputs are compared byte-for-byte before timing (the burst
path must be a pure optimisation).  Acceptance: burst ≥ 3x scalar at
1k flows.  Expected shape: the ratio is roughly flat from 1 to 10k
flows because every amortised structure is per-flow-keyed and sized for
10k+ entries; a collapse at high flow counts would indicate cache
thrash.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import copy_batch, drive_batch, make_router
from repro.net import EndBPF
from repro.progs import end_prog
from repro.sim.trafgen import batch_srv6_udp_flows

FLOW_COUNTS = (1, 10, 100, 1_000, 10_000)
BATCH = 2048
ROUNDS = 5
RESULTS: dict[tuple[int, str], float] = {}  # (flows, mode) -> pps

FUNC_SEGMENT = "fc00:e::100"


def make_end_bpf_router():
    """R with the §3.2 End.BPF baseline function on the test segment."""
    node = make_router()
    node.add_route(f"{FUNC_SEGMENT}/128", encap=EndBPF(end_prog()))
    return node


def make_templates(flows: int):
    return batch_srv6_udp_flows(
        "fc00:1::1", FUNC_SEGMENT, "fc00:2", flows, max(BATCH, flows)
    )


def measure(node, templates, burst: bool) -> float:
    """Best-of-ROUNDS packets/sec of wall-clock through the datapath."""
    count = len(templates)
    best = float("inf")
    for _ in range(ROUNDS):
        pkts = copy_batch(templates)
        start = time.perf_counter()
        forwarded = drive_batch(node, pkts, burst=burst)
        elapsed = time.perf_counter() - start
        assert forwarded == count, "packets were dropped"
        best = min(best, elapsed)
    return count / best


@pytest.mark.parametrize("flows", FLOW_COUNTS)
def test_burst_scaling_point(flows):
    templates = make_templates(flows)

    # Differential gate: the burst path must forward the exact same bytes
    # in the exact same order before its timing means anything.
    scalar_node = make_end_bpf_router()
    burst_node = make_end_bpf_router()
    for pkt in copy_batch(templates):
        scalar_node.receive(pkt, scalar_node.devices["eth0"])
    burst_node.receive_burst(copy_batch(templates), burst_node.devices["eth0"])
    scalar_out = [bytes(p.data) for p in scalar_node.devices["eth1"].tx_buffer]
    burst_out = [bytes(p.data) for p in burst_node.devices["eth1"].tx_buffer]
    assert scalar_out == burst_out, f"burst path diverged at {flows} flows"
    scalar_node.devices["eth1"].tx_buffer.clear()
    burst_node.devices["eth1"].tx_buffer.clear()

    RESULTS[(flows, "scalar")] = measure(scalar_node, templates, burst=False)
    RESULTS[(flows, "burst")] = measure(burst_node, templates, burst=True)


def test_burst_scaling_report():
    if len(RESULTS) < 2 * len(FLOW_COUNTS):
        pytest.skip("burst scaling points did not run")
    print("\n=== Burst-mode scaling (packets/sec of wall-clock) ===")
    print(f"  {'flows':>7} {'scalar kpps':>12} {'burst kpps':>11} {'speed-up':>9}")
    for flows in FLOW_COUNTS:
        scalar = RESULTS[(flows, "scalar")]
        burst = RESULTS[(flows, "burst")]
        print(
            f"  {flows:>7} {scalar / 1e3:>12.1f} {burst / 1e3:>11.1f}"
            f" {burst / scalar:>8.2f}x"
        )

    # Acceptance: >= 3x at 1k concurrent flows.
    ratio_1k = RESULTS[(1_000, "burst")] / RESULTS[(1_000, "scalar")]
    assert ratio_1k >= 3.0, f"burst speed-up at 1k flows is only {ratio_1k:.2f}x"
    # The fast path must not collapse at 10k flows (cache-thrash guard):
    # it has to keep a clear majority of its 1k-flow advantage.
    ratio_10k = RESULTS[(10_000, "burst")] / RESULTS[(10_000, "scalar")]
    assert ratio_10k >= 0.6 * ratio_1k, (
        f"burst speed-up collapsed at 10k flows: {ratio_10k:.2f}x vs "
        f"{ratio_1k:.2f}x at 1k"
    )
