"""Batch amortisation — throughput vs. concurrent flow count (1 → 10k).

Not a paper figure: this bench qualifies the batch-native datapath that
lets the reproduction approach the traffic scale the paper's testbed
reaches natively (§3.2 drives the router at 610 kpps line rate; a
per-packet Python datapath with a fresh eBPF context per invocation is
orders of magnitude below that).  The router under test is R from
setup 1 running the End.BPF baseline function, driven with the §3.2
trafgen workload spread over N concurrent flows — each flow has its own
source port *and* its own final segment, so per-flow state (the node
flow table, the SRH-advance memo) is genuinely stressed rather than
replaying one 5-tuple.

For every flow count the same packet stream is pushed through

* the **baseline** — the seed's scalar datapath, reconstructed: one
  ``Node.receive()`` per packet with every amortisation cache (flow
  table, SRH-advance memo, compiled-handler cache) reset between
  packets, so each packet pays a full LPM walk, SRH parse and eBPF
  guest-address-space assembly, as the pre-batch pipeline did.  The
  reconstruction also pays cache teardown/rebuild work the historical
  scalar path never had, so it runs somewhat *slower* than the true
  seed path and the reported speed-up overstates the historical ratio
  accordingly — read the gate as "≥3x against a per-packet,
  fresh-context pipeline", not as an exact archaeology number;
* the **batch** path — one ``Node.receive_batch()``, with
  compiled-handler reuse, flow-table route memoisation and batched
  egress.

Before timing, batch output is checked byte-for-byte against per-packet
output (partition invariance at sizes 1 and N — the contract
`tests/test_batch_partition.py` pins in full).  Acceptance: batch ≥ 6.5x
the baseline at 1k flows (the re-landed JIT v2 + batch-resident
datapath; the first landing archived 7.01x in ``BENCH_pr4.json``).
Expected shape: the ratio is roughly flat from 1 to 10k flows because
every amortised structure is per-flow-keyed and sized for 10k+ entries;
a collapse at high flow counts would indicate cache thrash.

Set ``REPRO_BENCH_FLOWS`` (comma-separated flow counts, e.g. ``1,1000``)
to shrink the sweep for CI smoke runs; each acceptance assertion applies
whenever its flow point ran.  The 1k-flow point additionally runs with a
live 10 ms telemetry sampler attached (simulated line-rate cadence) and
asserts the export costs under 5% of batch throughput while still
clearing the speed-up floor.  Results — pps, speed-ups, the v2
resident-path counters and the telemetry run's drop accounting — are
written to ``BENCH_burst_scaling.json`` (override with
``REPRO_BENCH_JSON``).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import copy_batch, make_router_net
from repro.ebpf.jit import clear_handler_cache, handler_cache_stats
from repro.net import EndBPF, clear_advance_memo
from repro.progs import end_prog
from repro.sim.trafgen import batch_srv6_udp_flows

_DEFAULT_FLOWS = (1, 10, 100, 1_000, 10_000)
_ENV_FLOWS = tuple(
    int(f) for f in os.environ.get("REPRO_BENCH_FLOWS", "").replace(" ", "").split(",") if f
)
FLOW_COUNTS = _ENV_FLOWS or _DEFAULT_FLOWS
# Acceptance floor for the 1k-flow speed-up.  Defaults to the re-landing
# target; CI smoke lowers it slightly (REPRO_BURST_MIN_SPEEDUP=6.0) to
# absorb shared-runner noise without letting a real regression through.
MIN_SPEEDUP_1K = float(os.environ.get("REPRO_BURST_MIN_SPEEDUP", "6.5"))
BATCH = 2048
ROUNDS = 5
RESULTS: dict[tuple[int, str], float] = {}  # (flows, mode) -> pps
V2_COUNTERS: dict[int, dict] = {}  # flows -> resident-path stats of the batch rounds
TELEMETRY_INFO: dict = {}  # the 1k-flow telemetry-enabled run's export accounting
# Telemetry overhead gate: a 10 ms streaming sampler may not cost the
# batch datapath more than this fraction of its throughput.
MAX_TELEMETRY_OVERHEAD = 0.05

FUNC_SEGMENT = "fc00:e::100"
TELEMETRY_FLOWS = 1_000  # the acceptance anchor gets the telemetry-enabled run


def make_end_bpf_router():
    """R with the §3.2 End.BPF baseline function on the test segment."""
    net, node = make_router_net()
    node.add_route(f"{FUNC_SEGMENT}/128", encap=EndBPF(end_prog()))
    return net, node


def make_templates(flows: int):
    return batch_srv6_udp_flows(
        "fc00:1::1", FUNC_SEGMENT, "fc00:2", flows, max(BATCH, flows)
    )


def reset_amortisation_caches(node) -> None:
    """Forget everything the datapath amortises across packets.

    Between-packet resets make the next packet pay the full
    longest-prefix match, SRH parse and eBPF context assembly, like the
    seed's scalar pipeline did (plus the reset/rebuild work itself —
    see the module docstring for how to read the resulting ratio).
    """
    node.flow_table.clear()
    clear_advance_memo()
    clear_handler_cache()


def measure_baseline(node, templates) -> float:
    """Best-of-ROUNDS pps of the reconstructed per-packet seed datapath."""
    count = len(templates)
    dev = node.devices["eth0"]
    out = node.devices["eth1"].tx_buffer
    best = float("inf")
    for _ in range(ROUNDS):
        pkts = copy_batch(templates)
        receive = node.receive
        reset = reset_amortisation_caches
        start = time.perf_counter()
        for pkt in pkts:
            reset(node)
            receive(pkt, dev)
        elapsed = time.perf_counter() - start
        assert len(out) == count, "packets were dropped"
        out.clear()
        best = min(best, elapsed)
    return count / best


def measure_batch(node, templates) -> float:
    """Best-of-ROUNDS pps of the batch-native datapath."""
    count = len(templates)
    dev = node.devices["eth0"]
    out = node.devices["eth1"].tx_buffer
    best = float("inf")
    for _ in range(ROUNDS):
        pkts = copy_batch(templates)
        start = time.perf_counter()
        node.receive_batch(pkts, dev)
        elapsed = time.perf_counter() - start
        assert len(out) == count, "packets were dropped"
        out.clear()
        best = min(best, elapsed)
    return count / best


# The paper's §3.2 line rate: converts a batch into simulated wall-clock,
# which sets how often a 10 ms sampler would really fire (one 2048-packet
# batch ≈ 3.4 ms of line-rate traffic → a sample every ~3 batches).
LINE_RATE_PPS = 610_000
TELEMETRY_ROUNDS = 12
TELEMETRY_INTERVAL_NS = 10_000_000

# Tracing overhead gates (repro.trace): armed-but-dormant must be free
# (every hot path pays one slot load + is-None check, nothing else), and
# head-sampling one packet in 64 must stay under 5%.  CI smoke loosens
# both slightly for shared-runner noise.
TRACING_FLOWS = 1_000
TRACE_SAMPLE_EVERY = 64
TRACING_ROUNDS = 12
TRACING_REPS = 4
MAX_TRACING_DISABLED_OVERHEAD = float(os.environ.get("REPRO_TRACE_DISABLED_MAX", "0.01"))
MAX_TRACING_SAMPLED_OVERHEAD = float(os.environ.get("REPRO_TRACE_SAMPLED_MAX", "0.05"))
TRACING_INFO: dict = {}


def measure_batch_tracing(node, templates) -> dict:
    """Median paired-rotation overheads of the batch path A/B'd against itself.

    Three populations over the same router: *plain* (no tracer
    anywhere), *disabled* (a tracer armed on the node but no packet
    carrying a context — the dormant cost every untraced run pays) and
    *sampled* (1-in-64 packets admitted inside the timed region, spans
    recorded through the whole pipeline).  All three run back to back
    within each rotation, and each rotation yields overhead *ratios*
    (disabled/plain, sampled/plain) — under drifting host load (the
    dominant noise here) numerator and denominator of a rotation scale
    together, so per-rotation ratios stay honest where cross-run minima
    would not.  The reported overhead is the median ratio; the *gated*
    overhead is the per-rotation **floor** (minimum).  A preemption
    landing in either half of a rotation moves that rotation's ratio in
    one direction only, so over TRACING_ROUNDS rotations the floor is a
    robust lower bound on the true multiplicative overhead: it cannot
    flake upward from noise, while any structural regression (per-packet
    work added to the armed-but-dormant path) raises every rotation's
    ratio, floor included.
    """
    from statistics import median

    from repro.trace import Tracer

    import gc

    count = len(templates)
    dev = node.devices["eth0"]
    out = node.devices["eth1"].tx_buffer
    tracer = Tracer(sample=0)
    traced_per_round = len(range(0, count, TRACE_SAMPLE_EVERY))
    ratios = {"disabled": [], "sampled": []}
    best = {"plain": float("inf"), "sampled": float("inf")}

    def timed_round(mode: str) -> float:
        # A single batch is only a few ms of work — too short for a
        # stable reading — so each timed region drives TRACING_REPS
        # pre-copied batches back to back, with the GC collected
        # *outside* the region and kept off while the clock runs.
        batches = [copy_batch(templates) for _ in range(TRACING_REPS)]
        node.tracer = tracer if mode != "plain" else None
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            if mode == "sampled":
                admit = tracer.admit
                for pkts in batches:
                    for i in range(0, count, TRACE_SAMPLE_EVERY):
                        admit(pkts[i], "S", 0)
                    node.receive_batch(pkts, dev)
            else:
                for pkts in batches:
                    node.receive_batch(pkts, dev)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        assert len(out) == count * TRACING_REPS, "packets were dropped"
        if mode == "sampled":
            traced = [p for p in out if p.tctx is not None]
            assert len(traced) == traced_per_round * TRACING_REPS
            assert all(len(p.tctx) >= 2 for p in traced)  # emit + pipeline spans
        out.clear()
        return elapsed

    for mode in ("plain", "disabled", "sampled"):  # warmup: cold caches
        timed_round(mode)
    for _ in range(TRACING_ROUNDS):
        plain = timed_round("plain")
        disabled = timed_round("disabled")
        sampled = timed_round("sampled")
        ratios["disabled"].append(disabled / plain)
        ratios["sampled"].append(sampled / plain)
        best["plain"] = min(best["plain"], plain)
        best["sampled"] = min(best["sampled"], sampled)
    node.tracer = None
    return {
        "disabled_overhead_pct": round((median(ratios["disabled"]) - 1) * 100, 2),
        "sampled_overhead_pct": round((median(ratios["sampled"]) - 1) * 100, 2),
        "disabled_overhead_floor_pct": round((min(ratios["disabled"]) - 1) * 100, 2),
        "sampled_overhead_floor_pct": round((min(ratios["sampled"]) - 1) * 100, 2),
        "sample_every": TRACE_SAMPLE_EVERY,
        "traced_per_round": traced_per_round,
        "plain_pps": round(count * TRACING_REPS / best["plain"], 1),
        "sampled_pps": round(count * TRACING_REPS / best["sampled"], 1),
    }


def measure_batch_telemetry(net, node, templates) -> tuple[float, float, object]:
    """(pps, overhead, session) of the batch path with a live 10 ms sampler.

    Runs plain and sampler-armed rounds *alternating*, so thermal drift,
    GC pauses and cache state hit both populations equally; the sampler
    fires inside the timed region whenever the simulated line-rate clock
    crosses a 10 ms boundary — the cadence ``net.telemetry()`` would
    deliver on a scheduler-driven run.  Totals (not best-of) are
    compared: overhead is the extra wall-clock fraction the sampled
    rounds paid over the plain ones.
    """
    count = len(templates)
    dev = node.devices["eth0"]
    out = node.devices["eth1"].tx_buffer
    session = net.telemetry(interval_ns=TELEMETRY_INTERVAL_NS)
    sim_batch_ns = int(count * 1e9 / LINE_RATE_PPS)
    sim_ns, due_ns = 0, TELEMETRY_INTERVAL_NS
    t_plain = t_sampled = 0.0
    for round_idx in range(2 * TELEMETRY_ROUNDS):
        sampled = round_idx % 2 == 1
        pkts = copy_batch(templates)
        start = time.perf_counter()
        node.receive_batch(pkts, dev)
        if sampled:
            sim_ns += sim_batch_ns
            if sim_ns >= due_ns:
                session.sample()
                due_ns += TELEMETRY_INTERVAL_NS
        elapsed = time.perf_counter() - start
        assert len(out) == count, "packets were dropped"
        out.clear()
        if sampled:
            t_sampled += elapsed
        else:
            t_plain += elapsed
    session.close(final_sample=False)
    pps = count * TELEMETRY_ROUNDS / t_sampled
    overhead = (t_sampled - t_plain) / t_plain
    return pps, overhead, session


@pytest.mark.parametrize("flows", FLOW_COUNTS)
def test_batch_scaling_point(flows):
    templates = make_templates(flows)

    # Partition-invariance gate: whole-batch entry must forward the exact
    # same bytes in the exact same order as per-packet entry before its
    # timing means anything.
    _, packet_node = make_end_bpf_router()
    batch_net, batch_node = make_end_bpf_router()
    for pkt in copy_batch(templates):
        packet_node.receive(pkt, packet_node.devices["eth0"])
    batch_node.receive_batch(copy_batch(templates), batch_node.devices["eth0"])
    packet_out = [bytes(p.data) for p in packet_node.devices["eth1"].tx_buffer]
    batch_out = [bytes(p.data) for p in batch_node.devices["eth1"].tx_buffer]
    assert packet_out == batch_out, f"batch path diverged at {flows} flows"
    packet_node.devices["eth1"].tx_buffer.clear()
    batch_node.devices["eth1"].tx_buffer.clear()

    RESULTS[(flows, "baseline")] = measure_baseline(packet_node, templates)
    # The baseline's per-packet cache resets also zero the global v2
    # counters, so the stats snapshot after the batch rounds isolates
    # exactly this point's resident-path behaviour.
    RESULTS[(flows, "batch")] = measure_batch(batch_node, templates)
    if flows == TELEMETRY_FLOWS:
        # The same datapath with a live export stream attached: the
        # telemetry acceptance (speed-up floor still cleared, overhead
        # bounded) is asserted in the report test.
        pps, overhead, session = measure_batch_telemetry(
            batch_net, batch_node, templates
        )
        RESULTS[(flows, "batch+telemetry")] = pps
        TELEMETRY_INFO.update(
            {
                "overhead_pct": round(overhead * 100, 2),
                "samples": session.samples,
                "lines": len(session.sink),
                "drops": {
                    "sink": session.sink.dropped,
                    "rings": 0,  # no perf maps installed on this router
                },
            }
        )
    if flows == TRACING_FLOWS:
        TRACING_INFO.update(measure_batch_tracing(batch_node, templates))
    stats = handler_cache_stats()
    V2_COUNTERS[flows] = {
        k: stats[k]
        for k in (
            "handler_hits",
            "bpf_groups",
            "bpf_grouped_packets",
            "bpf_group_flushes",
            "v2_region_loads",
            "v2_region_stores",
        )
        if k in stats
    }


def test_batch_scaling_report():
    if len(RESULTS) < 2 * len(FLOW_COUNTS):
        pytest.skip("batch scaling points did not run")
    print("\n=== Batch amortisation scaling (packets/sec of wall-clock) ===")
    print(f"  {'flows':>7} {'baseline kpps':>14} {'batch kpps':>11} {'speed-up':>9}")
    for flows in FLOW_COUNTS:
        baseline = RESULTS[(flows, "baseline")]
        batch = RESULTS[(flows, "batch")]
        print(
            f"  {flows:>7} {baseline / 1e3:>14.1f} {batch / 1e3:>11.1f}"
            f" {batch / baseline:>8.2f}x"
        )

    telemetry = None
    if (TELEMETRY_FLOWS, "batch+telemetry") in RESULTS:
        sampled = RESULTS[(TELEMETRY_FLOWS, "batch+telemetry")]
        telemetry = {
            "flows": TELEMETRY_FLOWS,
            "pps": round(sampled, 1),
            "speedup": round(sampled / RESULTS[(TELEMETRY_FLOWS, "baseline")], 2),
            **TELEMETRY_INFO,
        }
        print(
            f"  telemetry-enabled batch at {TELEMETRY_FLOWS} flows: "
            f"{sampled / 1e3:.1f} kpps ({telemetry['speedup']}x, "
            f"overhead {telemetry['overhead_pct']}%, "
            f"{telemetry['samples']} samples exported)"
        )

    tracing = dict(TRACING_INFO) if TRACING_INFO else None
    if tracing is not None:
        print(
            f"  tracing at {TRACING_FLOWS} flows: dormant "
            f"{tracing['disabled_overhead_pct']:+.2f}%, 1-in-{TRACE_SAMPLE_EVERY} "
            f"sampled {tracing['sampled_overhead_pct']:+.2f}% "
            f"({tracing['sampled_pps'] / 1e3:.1f} kpps)"
        )

    out = {
        "burst_scaling": {
            "pps": {
                f"{flows}/{mode}": round(pps, 1)
                for (flows, mode), pps in sorted(RESULTS.items())
            },
            "speedup": {
                str(flows): round(
                    RESULTS[(flows, "batch")] / RESULTS[(flows, "baseline")], 2
                )
                for flows in FLOW_COUNTS
            },
            "v2_counters": {str(f): c for f, c in sorted(V2_COUNTERS.items())},
            "telemetry": telemetry,
            "tracing": tracing,
        }
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_burst_scaling.json")
    with open(out_path, "w") as fh:
        json.dump(out, fh, indent=2)
    print(f"  written to {out_path}")

    # Acceptance: >= 6.5x over the seed scalar baseline at 1k concurrent
    # flows (the re-landed fast path; PR 4 archived 7.01x).  Applies
    # whenever the 1k point ran, including smoke sweeps.
    if (1_000, "batch") in RESULTS:
        ratio_1k = RESULTS[(1_000, "batch")] / RESULTS[(1_000, "baseline")]
        assert ratio_1k >= MIN_SPEEDUP_1K, (
            f"batch speed-up at 1k flows is only {ratio_1k:.2f}x "
            f"(floor {MIN_SPEEDUP_1K}x)"
        )
        # The amortisation must not collapse at 10k flows (cache-thrash
        # guard): it keeps a clear majority of its 1k-flow advantage.
        if (10_000, "batch") in RESULTS:
            ratio_10k = RESULTS[(10_000, "batch")] / RESULTS[(10_000, "baseline")]
            assert ratio_10k >= 0.6 * ratio_1k, (
                f"batch speed-up collapsed at 10k flows: {ratio_10k:.2f}x vs "
                f"{ratio_1k:.2f}x at 1k"
            )

    # Telemetry acceptance: a live 10 ms export stream must not cost the
    # datapath its amortisation win — the sampled run still clears the
    # same speed-up floor, and sheds under MAX_TELEMETRY_OVERHEAD of the
    # plain batch throughput.
    if telemetry is not None:
        assert telemetry["speedup"] >= MIN_SPEEDUP_1K, (
            f"telemetry-enabled speed-up at {TELEMETRY_FLOWS} flows is only "
            f"{telemetry['speedup']}x (floor {MIN_SPEEDUP_1K}x)"
        )
        assert telemetry["overhead_pct"] < MAX_TELEMETRY_OVERHEAD * 100, (
            f"telemetry sampler costs {telemetry['overhead_pct']}% of batch "
            f"throughput (budget {MAX_TELEMETRY_OVERHEAD * 100:.0f}%)"
        )

    # Tracing acceptance: an armed-but-dormant tracer is free (the hot
    # paths pay one slot load + is-None check, shared with the untraced
    # build), and head-sampling 1-in-64 packets stays within budget.
    # The gate reads the per-rotation ratio *floor* — a lower bound on
    # the true overhead that host-load noise can only push down, never
    # up, so the tight budgets hold without flaking on shared hosts
    # (see measure_batch_tracing; the printed median is the estimate).
    if tracing is not None:
        assert tracing["disabled_overhead_floor_pct"] < MAX_TRACING_DISABLED_OVERHEAD * 100, (
            f"dormant tracing costs {tracing['disabled_overhead_floor_pct']}% "
            f"even in the quietest rotation "
            f"(budget {MAX_TRACING_DISABLED_OVERHEAD * 100:.1f}%)"
        )
        assert tracing["sampled_overhead_floor_pct"] < MAX_TRACING_SAMPLED_OVERHEAD * 100, (
            f"1-in-{TRACE_SAMPLE_EVERY} traced sampling costs "
            f"{tracing['sampled_overhead_floor_pct']}% even in the quietest "
            f"rotation (budget {MAX_TRACING_SAMPLED_OVERHEAD * 100:.0f}%)"
        )
