"""Shard scaling — delivered throughput capacity vs. worker count.

Not a paper figure: this bench qualifies the conservative parallel
engine (``net.run(shards=K)``) on a parameterised multi-region
topology — ``REGIONS`` chains of ``REGION_SIZE`` nodes joined by
high-delay inter-region trunks, one local flow per region plus light
cross-region traffic so every round really exchanges handoffs.

The container this bench grew up in has **one** CPU, so wall-clock
cannot show a parallel win; what sharding buys there is *capacity*:

    pps_capacity = total delivered packets / max(per-shard busy seconds)

``busy_s`` is each worker's wall clock spent injecting handoffs,
executing its grant and packing its outbox (``ShardRunResult.busy_s``);
the max over shards is the critical-path time an adequately provisioned
host would take, so the capacity ratio against shards=1 is the speed-up
the partition actually exposes (perfect balance on R regions ≈ R, minus
handoff/round overhead).  Wall-clock per run is recorded alongside so a
multi-core host can read the real-time ratio from the same artifact.

Before any timing counts, the delivered-packet totals and per-meter
delay lists of every shard count are byte-compared — a run that breaks
the determinism contract has no throughput worth reporting (the full
gate lives in ``tests/shard/test_determinism.py``).

Acceptance (capacity ratio over shards=1): ≥ 1.7x at 2 shards and
≥ 3x at 4 — override with ``REPRO_SHARD_MIN_SPEEDUP_2`` / ``_4`` (CI
smoke lowers the 2-shard floor to absorb shared-runner noise).  Set
``REPRO_SHARD_COUNTS`` (e.g. ``1,2``) to shrink the sweep.  Results —
capacity, wall clock, per-shard busy seconds, rounds, and the
``Event.__slots__`` per-event memory note — are written to
``BENCH_shard_scaling.json`` (override with ``REPRO_BENCH_JSON``).
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

from repro.lab import Network
from repro.sim.scheduler import NS_PER_MS, Event

_ENV_COUNTS = tuple(
    int(c)
    for c in os.environ.get("REPRO_SHARD_COUNTS", "").replace(" ", "").split(",")
    if c
)
SHARD_COUNTS = _ENV_COUNTS or (1, 2, 4)
MIN_SPEEDUP = {
    2: float(os.environ.get("REPRO_SHARD_MIN_SPEEDUP_2", "1.7")),
    4: float(os.environ.get("REPRO_SHARD_MIN_SPEEDUP_4", "3.0")),
}

REGIONS = 4
REGION_SIZE = 4
INTRA_DELAY_NS = 50_000  # cheap links: contracted inside shards
TRUNK_DELAY_NS = 5 * NS_PER_MS  # expensive links: the cut, 5 ms lookahead
UNTIL_NS = int(os.environ.get("REPRO_SHARD_UNTIL_MS", "1000")) * NS_PER_MS
ROUNDS = int(os.environ.get("REPRO_SHARD_ROUNDS", "2"))  # best-of timing rounds
LOCAL_RATE_BPS = 40e6
CROSS_RATE_BPS = 2e6

RESULTS: dict[int, dict] = {}  # shards -> measured point
OBSERVED: dict[int, tuple] = {}  # shards -> (delivered totals, delay lists)


def node_name(region: int, i: int) -> str:
    return f"R{region}N{i}"


def node_addr(region: int, i: int) -> str:
    return f"fc00:{region + 1}:{i + 1}::1"


def make_regions(seed: int = 3) -> Network:
    """``REGIONS`` chained regions with local sinks and cross trunks."""
    net = Network(seed=seed)
    for region in range(REGIONS):
        for i in range(REGION_SIZE):
            net.add_node(node_name(region, i), addr=node_addr(region, i))
        for i in range(REGION_SIZE - 1):
            net.add_link(
                node_name(region, i),
                node_name(region, i + 1),
                rate_bps=1e9,
                delay_ns=INTRA_DELAY_NS,
            )
    for region in range(REGIONS - 1):
        net.add_link(
            node_name(region, 0),
            node_name(region + 1, 0),
            rate_bps=1e9,
            delay_ns=TRUNK_DELAY_NS,
        )
    net.ctrl(hello_interval_ns=10 * NS_PER_MS)
    last = REGION_SIZE - 1
    for region in range(REGIONS):
        net.sink(node_name(region, last))
        local = net.trafgen(
            node_name(region, 1),
            dst=node_addr(region, last),
            rate_bps=LOCAL_RATE_BPS,
            payload_size=600,
        )
        local.start(at_ns=0)
        cross = net.trafgen(
            node_name(region, 2),
            dst=node_addr((region + 1) % REGIONS, last),
            rate_bps=CROSS_RATE_BPS,
            payload_size=600,
        )
        cross.start(at_ns=0)
    return net


def run_once(shards: int) -> dict:
    net = make_regions()
    start = time.perf_counter()
    cpu_start = time.process_time()
    result = net.run(until_ns=UNTIL_NS, shards=shards)
    cpu_s = time.process_time() - cpu_start
    wall_s = time.perf_counter() - start
    # busy_s is CPU time (the workers measure process_time): on the
    # one-CPU host this bench grew up in, sibling shards timeshare, so
    # wall time per worker would count preemption as work.
    busy_s = list(result.busy_s) if shards > 1 else [cpu_s]
    delivered = sum(meter.packets for meter in net.meters)
    observed = (
        tuple(meter.packets for meter in net.meters),
        tuple(tuple(meter.delays_ns) for meter in net.meters),
    )
    return {
        "delivered": delivered,
        "events": int(result),
        "wall_s": round(wall_s, 4),
        "busy_s": [round(b, 4) for b in busy_s],
        "rounds": result.rounds if shards > 1 else 0,
        "pps_capacity": round(delivered / max(busy_s), 1),
        "_observed": observed,
    }


def run_point(shards: int) -> dict:
    """Best-of-``ROUNDS`` capacity; every round must observe identical
    deliveries (sharding is deterministic, so timing rounds are free
    re-checks of the contract)."""
    best = None
    for _ in range(ROUNDS):
        point = run_once(shards)
        if best is None:
            best = point
        else:
            assert point["_observed"] == best["_observed"], (
                f"shards={shards} rounds disagreed with each other"
            )
            if point["pps_capacity"] > best["pps_capacity"]:
                best = point
    OBSERVED[shards] = best.pop("_observed")
    return best


def event_memory_note() -> dict:
    """What ``Event.__slots__`` saves per instance, measured here."""

    class DictEvent:  # the same nine fields, without __slots__
        def __init__(self):
            self.time_ns = self.stream = self.phase = self.seq = 0
            self.callback = self.args = None
            self.cancelled = self.daemon = False
            self.owner = None

    slotted = Event(0, 0, 0, 0, lambda: None)
    assert not hasattr(slotted, "__dict__")
    plain = DictEvent()
    slotted_bytes = sys.getsizeof(slotted)
    dict_bytes = sys.getsizeof(plain) + sys.getsizeof(plain.__dict__)
    return {
        "slotted_bytes": slotted_bytes,
        "dict_bytes": dict_bytes,
        "saving_pct": round(100 * (1 - slotted_bytes / dict_bytes), 1),
    }


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_shard_scaling_point(shards):
    RESULTS[shards] = run_point(shards)
    assert RESULTS[shards]["delivered"] > 0, "scenario must deliver traffic"


def test_shard_scaling_report():
    if len(RESULTS) < len(SHARD_COUNTS):
        pytest.skip("shard scaling points did not run")

    # Determinism cross-check: every shard count saw the same deliveries.
    if 1 in OBSERVED:
        for shards, observed in sorted(OBSERVED.items()):
            assert observed == OBSERVED[1], (
                f"shards={shards} diverged from the unsharded run"
            )

    print("\n=== Shard scaling (capacity = delivered / max shard-busy) ===")
    print(f"  {'shards':>6} {'delivered':>9} {'wall s':>8} {'max busy s':>10} "
          f"{'kpps cap':>9} {'speed-up':>9}")
    base = RESULTS.get(1)
    speedup: dict[str, float] = {}
    for shards in sorted(RESULTS):
        point = RESULTS[shards]
        ratio = point["pps_capacity"] / base["pps_capacity"] if base else float("nan")
        if base and shards > 1:
            speedup[str(shards)] = round(ratio, 2)
        print(
            f"  {shards:>6} {point['delivered']:>9} {point['wall_s']:>8.3f} "
            f"{max(point['busy_s']):>10.3f} {point['pps_capacity'] / 1e3:>9.1f} "
            f"{ratio:>8.2f}x"
        )

    memory = event_memory_note()
    print(
        f"  Event.__slots__: {memory['slotted_bytes']} B/event vs "
        f"{memory['dict_bytes']} B with __dict__ ({memory['saving_pct']}% saved)"
    )

    out = {
        "shard_scaling": {
            "topology": {
                "regions": REGIONS,
                "region_size": REGION_SIZE,
                "trunk_delay_ms": TRUNK_DELAY_NS // NS_PER_MS,
                "until_ms": UNTIL_NS // NS_PER_MS,
            },
            "points": {str(s): RESULTS[s] for s in sorted(RESULTS)},
            "speedup_capacity": speedup,
            "event_memory": memory,
        }
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_shard_scaling.json")
    with open(out_path, "w") as fh:
        json.dump(out, fh, indent=2)
    print(f"  written to {out_path}")

    # Acceptance: the partition must expose real parallel capacity.
    for shards, floor in MIN_SPEEDUP.items():
        if str(shards) in speedup:
            assert speedup[str(shards)] >= floor, (
                f"capacity speed-up at {shards} shards is only "
                f"{speedup[str(shards)]}x (floor {floor}x)"
            )
