"""Ablations of the paper's design choices (DESIGN.md §6).

Three sweeps beyond the paper's reported points:

* **Probing-ratio sweep** (§4.1): End.DM node throughput across ratios
  1:1 … 1:10000 — the two points of Figure 3, plus the whole curve.
  Expected: monotone non-decreasing with the ratio.
* **WRR weight sensitivity** (§4.2): UDP goodput across weight settings.
  Expected: goodput peaks when weights match the 50:30 capacity ratio —
  the paper's stated configuration rule ("the weights of the WRR match
  the uplink links capacities").
* **Compensation error sweep** (§4.2): TCP goodput as a function of the
  netem delay applied to the fast path.  Expected: a peak near the ideal
  half-gap (12.5 ms), degrading toward the uncompensated disaster at
  0 ms — the reason the TWD daemon measures instead of guessing.
"""

import pytest

from repro.bench import BATCH_SIZE, copy_batch, drive_batch
from repro.sim import build_setup2, mbps
from repro.sim.scheduler import NS_PER_MS, NS_PER_SEC
from repro.usecases import deploy_hybrid_access

# --- probing-ratio sweep ------------------------------------------------------

RATIOS = (1, 10, 100, 1000, 10000)
RATIO_RESULTS: dict[int, float] = {}


@pytest.mark.parametrize("ratio", RATIOS)
def test_ratio_sweep_point(benchmark, ratio):
    from benchmarks.bench_fig3_delay_monitoring import make_tail

    node, templates, _events = make_tail(ratio)

    def setup():
        return (node, copy_batch(templates)), {}

    benchmark.pedantic(drive_batch, setup=setup, rounds=5, warmup_rounds=1)
    RATIO_RESULTS[ratio] = BATCH_SIZE / benchmark.stats.stats.min
    benchmark.extra_info["kpps"] = round(RATIO_RESULTS[ratio] / 1e3, 1)


def test_ratio_sweep_monotone(benchmark):
    if len(RATIO_RESULTS) < len(RATIOS):
        pytest.skip("sweep points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== End.DM throughput vs probing ratio ===")
    for ratio in RATIOS:
        print(f"  1:{ratio:<6} {RATIO_RESULTS[ratio] / 1e3:8.1f} kpps")
    # Sparser probing must never be meaningfully slower (generous noise
    # tolerance for adjacent points; the endpoints carry the signal).
    ordered = [RATIO_RESULTS[r] for r in RATIOS]
    for denser, sparser in zip(ordered, ordered[1:]):
        assert sparser > denser * 0.75
    assert RATIO_RESULTS[10000] > 3 * RATIO_RESULTS[1]


# --- WRR weight sensitivity ---------------------------------------------------------

WEIGHTS = ((1, 1), (5, 3), (3, 5), (9, 1))
WEIGHT_RESULTS: dict[tuple[int, int], float] = {}


def run_weights(weights) -> float:
    setup = build_setup2()
    deploy_hybrid_access(setup, weights=weights)
    meter = setup.net.sink("S2")
    flow = setup.net.trafgen("S1", dst="fc00:2::2", rate_bps=150e6, payload_size=1400)
    flow.start(duration_ns=NS_PER_SEC // 2)
    setup.net.run(until_ns=int(0.8 * NS_PER_SEC))
    return meter.goodput_bps()


@pytest.mark.parametrize("weights", WEIGHTS, ids=lambda w: f"{w[0]}-{w[1]}")
def test_wrr_weights_point(benchmark, weights):
    goodput = benchmark.pedantic(run_weights, args=(weights,), rounds=1)
    WEIGHT_RESULTS[weights] = goodput
    benchmark.extra_info["goodput_mbps"] = round(mbps(goodput), 1)


def test_wrr_weights_shape(benchmark):
    if len(WEIGHT_RESULTS) < len(WEIGHTS):
        pytest.skip("weight points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== UDP goodput vs WRR weights (links 50/30 Mb/s) ===")
    for weights in WEIGHTS:
        print(f"  {weights[0]}:{weights[1]:<3} {mbps(WEIGHT_RESULTS[weights]):6.1f} Mb/s")
    matched = WEIGHT_RESULTS[(5, 3)]
    # Capacity-matched weights beat both the inverted and the extreme split.
    assert matched > WEIGHT_RESULTS[(3, 5)]
    assert matched > WEIGHT_RESULTS[(9, 1)]
    # ... and at least match the naive equal split.
    assert matched >= WEIGHT_RESULTS[(1, 1)] * 0.98


# --- compensation error sweep ----------------------------------------------------------

DELAYS_MS = (0, 6, 12, 19, 30)
DELAY_RESULTS: dict[int, float] = {}


def run_fixed_compensation(delay_ms: int) -> float:
    setup = build_setup2()
    deploy_hybrid_access(setup, weights=(5, 3), compensation=False)
    # Apply a *fixed* delay to the fast (lte) path, standing in for the
    # TWD daemon's adaptive value.
    setup.net.netem("A", "lte", delay_ns=delay_ms * NS_PER_MS, seed=55)
    sender, receiver = setup.net.tcp("S1", "S2", port=5000)
    sender.start()
    setup.net.run(until_ns=6 * NS_PER_SEC)
    return receiver.goodput_bps()


@pytest.mark.parametrize("delay_ms", DELAYS_MS)
def test_compensation_error_point(benchmark, delay_ms):
    goodput = benchmark.pedantic(run_fixed_compensation, args=(delay_ms,), rounds=1)
    DELAY_RESULTS[delay_ms] = goodput
    benchmark.extra_info["goodput_mbps"] = round(mbps(goodput), 1)


def test_compensation_error_shape(benchmark):
    if len(DELAY_RESULTS) < len(DELAYS_MS):
        pytest.skip("compensation points did not run")
    benchmark.pedantic(lambda: None, rounds=1)
    print("\n=== TCP goodput vs fixed fast-path delay (ideal = 12.5 ms) ===")
    for delay_ms in DELAYS_MS:
        print(f"  {delay_ms:>3} ms  {mbps(DELAY_RESULTS[delay_ms]):6.1f} Mb/s")
    best = max(DELAYS_MS, key=lambda d: DELAY_RESULTS[d])
    # The optimum sits at or next to the ideal half-gap...
    assert best in (6, 12, 19)
    # ... and beats no compensation by a wide margin.
    assert DELAY_RESULTS[best] > 3 * DELAY_RESULTS[0]
